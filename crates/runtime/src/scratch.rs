//! Pool-aware reusable buffer arena: lease typed `Vec`s, return them on
//! drop, and reuse the backing storage across rounds.
//!
//! The Boruvka-family algorithms run `O(log n)` synchronous rounds, and the
//! natural implementation allocates fresh per-round vectors (best-edge
//! cells, parent arrays, renumber tables, packed survivor lists) every
//! round. Because live vertex/edge counts shrink monotonically, every one of
//! those buffers fits inside its round-1 incarnation — so after a warm-up
//! round the allocator has nothing left to contribute but latency. The
//! engineering literature on massively parallel MST (Sanders/Lamm/Schimek)
//! leans on exactly this observation: flat preallocated round state, zero
//! steady-state allocation.
//!
//! [`ScratchArena`] is the reuse mechanism: [`ScratchArena::lease`] hands
//! out an empty `Vec<T>` with at least the requested capacity, preferring a
//! previously returned buffer (best fit, so concurrently leased buffers of
//! the same element type do not steal each other's storage). The returned
//! [`ScratchVec`] guard derefs to the `Vec` and, on drop, clears it and
//! shelves the storage for the next lease. Buffers are shelved inside the
//! `Box` that carried them, so a steady-state lease/return cycle performs
//! **zero heap allocations** — the property `tests/zero_alloc.rs` pins down
//! with a counting global allocator.
//!
//! Parallel first-touch initialisation ([`ScratchArena::lease_filled`],
//! [`ScratchArena::lease_init_with`]) writes the buffer through the pool so
//! large round state is faulted in and initialised by the threads that will
//! use it. High-water telemetry ([`ScratchArena::high_water_bytes`]) reports
//! the peak resident footprint for run reports.

use crate::parallel_for::{parallel_for_chunks, ParallelForConfig};
use crate::pool::ThreadPool;
use crate::reduce::SendPtr;
use crate::sync::Mutex;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// A typed buffer pool. See the module docs for the reuse discipline.
pub struct ScratchArena {
    /// One shelf per `Vec<T>` type; each entry is a `Box<Vec<T>>` in
    /// disguise. Boxes are recycled whole, so shelving never allocates.
    shelves: Mutex<HashMap<TypeId, Vec<Box<dyn Any + Send>>>>,
    /// Current footprint: capacity bytes of every buffer, shelved or leased.
    footprint: AtomicU64,
    /// Peak of `footprint` over the arena's lifetime.
    high_water: AtomicU64,
    /// Total leases served.
    leases: AtomicU64,
    /// Leases served from a shelved buffer (no fresh allocation).
    reuses: AtomicU64,
}

impl Default for ScratchArena {
    fn default() -> Self {
        Self::new()
    }
}

impl ScratchArena {
    /// An empty arena.
    pub fn new() -> Self {
        ScratchArena {
            shelves: Mutex::new(HashMap::new()),
            footprint: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
            leases: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
        }
    }

    /// Leases an empty `Vec<T>` with `capacity() >= capacity`.
    ///
    /// Best-fit: the smallest shelved buffer that already satisfies the
    /// request is reused as-is; if none is large enough the largest shelved
    /// buffer is grown (keeping the arena converging towards one buffer per
    /// concurrent lease instead of many undersized ones). Only that growth —
    /// or a completely empty shelf — touches the allocator.
    pub fn lease<T: Send + 'static>(&self, capacity: usize) -> ScratchVec<'_, T> {
        self.leases.fetch_add(1, Ordering::Relaxed);
        let reused: Option<Box<Vec<T>>> = {
            let mut shelves = self.shelves.lock();
            match shelves.get_mut(&TypeId::of::<Vec<T>>()) {
                Some(shelf) if !shelf.is_empty() => {
                    let cap_of = |b: &Box<dyn Any + Send>| {
                        b.downcast_ref::<Vec<T>>().expect("shelf type keyed by TypeId").capacity()
                    };
                    // Best fit, falling back to the largest buffer.
                    let mut best: Option<(usize, usize)> = None; // (index, cap)
                    let mut largest = (0usize, 0usize);
                    for (i, b) in shelf.iter().enumerate() {
                        let cap = cap_of(b);
                        if cap >= largest.1 {
                            largest = (i, cap);
                        }
                        if cap >= capacity && best.is_none_or(|(_, bc)| cap < bc) {
                            best = Some((i, cap));
                        }
                    }
                    let idx = best.map_or(largest.0, |(i, _)| i);
                    Some(
                        shelf
                            .swap_remove(idx)
                            .downcast::<Vec<T>>()
                            .expect("shelf type keyed by TypeId"),
                    )
                }
                _ => None,
            }
        };
        let mut boxed = match reused {
            Some(b) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => Box::new(Vec::new()),
        };
        let old_cap = boxed.capacity();
        if old_cap < capacity {
            boxed.reserve_exact(capacity - boxed.len());
            self.grow_footprint(bytes_of::<T>(boxed.capacity()) - bytes_of::<T>(old_cap));
        }
        debug_assert!(boxed.is_empty());
        ScratchVec {
            vec: ManuallyDrop::new(boxed),
            arena: self,
        }
    }

    /// Leases a buffer of `len` copies of `value`, written in parallel
    /// through `pool` (first-touch initialisation by the consuming threads).
    pub fn lease_filled<T>(
        &self,
        pool: &ThreadPool,
        cfg: ParallelForConfig,
        len: usize,
        value: T,
    ) -> ScratchVec<'_, T>
    where
        T: Copy + Send + Sync + 'static,
    {
        self.lease_init_with(pool, cfg, len, move |_| value)
    }

    /// Leases a buffer with `buf[i] = init(i)` for `i in 0..len`, written in
    /// parallel through `pool`.
    pub fn lease_init_with<T, F>(
        &self,
        pool: &ThreadPool,
        cfg: ParallelForConfig,
        len: usize,
        init: F,
    ) -> ScratchVec<'_, T>
    where
        T: Send + Sync + 'static,
        F: Fn(usize) -> T + Sync,
    {
        let mut sv = self.lease::<T>(len);
        {
            let v: &mut Vec<T> = &mut sv;
            let ptr = SendPtr::new(v.as_mut_ptr());
            parallel_for_chunks(pool, 0..len, cfg, |chunk| {
                for i in chunk {
                    // SAFETY: capacity >= len, chunks are disjoint, and every
                    // index in 0..len is written exactly once before set_len.
                    unsafe { ptr.get().add(i).write(init(i)) };
                }
            });
            // SAFETY: the loop above initialised exactly 0..len.
            unsafe { v.set_len(len) };
        }
        sv
    }

    /// Peak resident footprint (capacity bytes across shelved + leased
    /// buffers) over the arena's lifetime.
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Current resident footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint.load(Ordering::Relaxed)
    }

    /// Total leases served.
    pub fn lease_count(&self) -> u64 {
        self.leases.load(Ordering::Relaxed)
    }

    /// Leases served by recycling a shelved buffer.
    pub fn reuse_count(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Records the arena's high-water mark into telemetry (series
    /// `scratch-high-water-bytes`); callers invoke this once per run, not
    /// per round, so the hot path stays allocation-free.
    pub fn report_telemetry(&self) {
        crate::telemetry::record_value("scratch-high-water-bytes", self.high_water_bytes());
        crate::telemetry::record_value("scratch-reused-leases", self.reuse_count());
    }

    fn grow_footprint(&self, delta: u64) {
        let now = self.footprint.fetch_add(delta, Ordering::Relaxed) + delta;
        self.high_water.fetch_max(now, Ordering::Relaxed);
    }

    // The box is the point: a `Vec<T>` can only cross the `dyn Any` shelf
    // boundary behind a pointer, and keeping it boxed for its whole lease
    // makes the return a pointer move — no reallocation on `put_back`.
    #[allow(clippy::box_collection)]
    fn put_back<T: Send + 'static>(&self, boxed: Box<Vec<T>>) {
        let mut shelves = self.shelves.lock();
        shelves
            .entry(TypeId::of::<Vec<T>>())
            .or_default()
            .push(boxed as Box<dyn Any + Send>);
    }
}

#[inline]
fn bytes_of<T>(capacity: usize) -> u64 {
    (capacity * std::mem::size_of::<T>()) as u64
}

/// A leased buffer. Derefs to `Vec<T>`; on drop the contents are cleared
/// (running element drops, if any) and the storage returns to the arena.
pub struct ScratchVec<'a, T: Send + 'static> {
    // Boxed so the drop handler can reshelve the allocation as
    // `Box<dyn Any>` with a pointer move instead of a fresh `Box::new`.
    #[allow(clippy::box_collection)]
    vec: ManuallyDrop<Box<Vec<T>>>,
    arena: &'a ScratchArena,
}

impl<T: Send + 'static> Deref for ScratchVec<'_, T> {
    type Target = Vec<T>;
    #[inline]
    fn deref(&self) -> &Vec<T> {
        &self.vec
    }
}

impl<T: Send + 'static> DerefMut for ScratchVec<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.vec
    }
}

impl<T: Send + 'static> Drop for ScratchVec<'_, T> {
    fn drop(&mut self) {
        // SAFETY: `vec` is never touched again — the ManuallyDrop suppresses
        // the field's own drop and this is the only take.
        let mut boxed = unsafe { ManuallyDrop::take(&mut self.vec) };
        let before = boxed.capacity();
        boxed.clear();
        // `clear` keeps capacity, but guard against pathological element
        // drops shrinking it (not possible today; cheap to account for).
        if boxed.capacity() != before {
            let now = bytes_of::<T>(boxed.capacity());
            let was = bytes_of::<T>(before);
            self.arena.footprint.fetch_add(now.wrapping_sub(was), Ordering::Relaxed);
        }
        self.arena.put_back(boxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_round_trip_reuses_storage() {
        let arena = ScratchArena::new();
        let first_ptr;
        {
            let mut v = arena.lease::<u64>(1000);
            v.extend(0..1000u64);
            first_ptr = v.as_ptr();
            assert_eq!(v.len(), 1000);
        }
        // Returned cleared, same backing storage on re-lease.
        let v = arena.lease::<u64>(500);
        assert!(v.is_empty());
        assert!(v.capacity() >= 1000);
        assert_eq!(v.as_ptr(), first_ptr);
        assert_eq!(arena.reuse_count(), 1);
    }

    #[test]
    fn best_fit_keeps_distinct_buffers_apart() {
        let arena = ScratchArena::new();
        {
            let _big = arena.lease::<u64>(10_000);
            let _small = arena.lease::<u64>(64);
        }
        // Leasing small-then-big again must not force the big lease to grow
        // the small buffer.
        let before = arena.footprint_bytes();
        {
            let small = arena.lease::<u64>(64);
            let big = arena.lease::<u64>(10_000);
            assert!(small.capacity() < 10_000, "small lease stole the big buffer");
            assert!(big.capacity() >= 10_000);
        }
        assert_eq!(arena.footprint_bytes(), before, "steady-state leases grew the arena");
    }

    #[test]
    fn distinct_types_do_not_collide() {
        let arena = ScratchArena::new();
        {
            let mut a = arena.lease::<u32>(10);
            let mut b = arena.lease::<u64>(10);
            a.push(1u32);
            b.push(2u64);
        }
        let a = arena.lease::<u32>(1);
        assert!(a.is_empty());
    }

    #[test]
    fn lease_filled_writes_every_slot() {
        let arena = ScratchArena::new();
        let pool = ThreadPool::new(4);
        let cfg = ParallelForConfig::with_grain(64);
        let v = arena.lease_filled::<u64>(&pool, cfg, 10_000, 7);
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().all(|&x| x == 7));
    }

    #[test]
    fn lease_init_with_indexes_correctly() {
        let arena = ScratchArena::new();
        let pool = ThreadPool::new(3);
        let cfg = ParallelForConfig::with_grain(100);
        let v = arena.lease_init_with::<u32, _>(&pool, cfg, 5000, |i| i as u32 * 2);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 * 2));
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let arena = ScratchArena::new();
        {
            let _a = arena.lease::<u64>(1 << 12);
        }
        let hw1 = arena.high_water_bytes();
        assert!(hw1 >= (1u64 << 12) * 8);
        {
            let _b = arena.lease::<u64>(16); // reuses the big buffer
        }
        assert_eq!(arena.high_water_bytes(), hw1);
        {
            let _c = arena.lease::<u64>(1 << 14);
        }
        assert!(arena.high_water_bytes() >= (1u64 << 14) * 8);
    }

    #[test]
    fn element_drops_run_on_return() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let arena = ScratchArena::new();
        {
            let mut v = arena.lease::<D>(4);
            v.push(D);
            v.push(D);
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
    }
}

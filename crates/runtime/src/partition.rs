//! Scan-based parallel partitioning: counting distribution, stable
//! three-way partition, and parallel retain.
//!
//! Filter-Kruskal's two data-parallel steps — pivot partition and the
//! filter pass — are both instances of one pattern: classify every element,
//! prefix-sum the class counts, scatter each element to its slot. The same
//! counting-distribution machinery backs the sample sort in [`crate::sort`].
//! The shape mirrors [`crate::scan::exclusive_scan`]: fixed chunks claimed
//! through an atomic cursor (chaos-instrumented like
//! [`crate::parallel_for`]), per-chunk class counts, one sequential
//! exclusive scan of the small count matrix, then a disjoint scatter
//! through raw pointers. Elements move bitwise through a `MaybeUninit`
//! scratch buffer, so no `Clone` bound is needed.

use crate::pool::ThreadPool;
use crate::reduce::SendPtr;
use crate::scan::exclusive_scan_in_place;
use crate::scratch::ScratchArena;
use std::cmp::Ordering as CmpOrdering;
use std::mem::MaybeUninit;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Below this many elements the sequential path wins.
pub(crate) const PAR_THRESHOLD: usize = 4096;

/// Stably reorders `data` so elements of class `0`, `1`, …, `nclasses - 1`
/// appear in that order, each class keeping its input order (counting
/// distribution). Returns the class boundaries: `bounds[c]..bounds[c + 1]`
/// is the range of class `c`, with `bounds.len() == nclasses + 1`.
///
/// `class_of` is called exactly once per element (classes are cached), so
/// expensive classifiers — union-find lookups, splitter binary searches —
/// are not re-evaluated during the scatter.
///
/// # Panics
/// Panics when `class_of` returns a value `>= nclasses`.
pub fn distribute_by_class<T, F>(
    pool: &ThreadPool,
    data: &mut [T],
    nclasses: usize,
    class_of: F,
) -> Vec<usize>
where
    T: Send + Sync + 'static,
    F: Fn(&T) -> usize + Sync,
{
    let arena = ScratchArena::new();
    let mut bounds = Vec::with_capacity(nclasses + 1);
    distribute_by_class_in(pool, data, nclasses, &arena, &mut bounds, class_of);
    bounds
}

/// [`distribute_by_class`] with all round state leased from `arena`:
/// the cached class ids, the class-major count matrix, and the scatter
/// scratch buffer. `bounds` is cleared and refilled in place, so repeated
/// calls with a warm arena perform no heap allocations.
pub fn distribute_by_class_in<T, F>(
    pool: &ThreadPool,
    data: &mut [T],
    nclasses: usize,
    arena: &ScratchArena,
    bounds: &mut Vec<usize>,
    class_of: F,
) where
    T: Send + Sync + 'static,
    F: Fn(&T) -> usize + Sync,
{
    assert!(nclasses >= 1, "need at least one class");
    assert!(nclasses <= u16::MAX as usize, "class ids are stored as u16");
    let n = data.len();
    bounds.clear();
    if n == 0 {
        bounds.resize(nclasses + 1, 0);
        return;
    }
    if pool.threads() == 1 || n < PAR_THRESHOLD {
        bounds.extend_from_slice(&distribute_seq(data, nclasses, &class_of));
        return;
    }

    let nchunks = (pool.threads() * 8).min(n);
    let chunk = n.div_ceil(nchunks);
    let nchunks = n.div_ceil(chunk);

    // Pass 1: classify, caching class ids and per-chunk class counts.
    // Counts are laid out class-major (`[class][chunk]`) so a single
    // exclusive scan yields every (class, chunk) scatter base offset.
    // Chunk `b` exclusively owns column `b` of the matrix, so workers
    // increment it directly — no per-worker count buffers, no merge.
    let mut classes = arena.lease::<u16>(n);
    let mut counts = arena.lease::<u64>(nclasses * nchunks);
    counts.resize(nclasses * nchunks, 0);
    {
        let classes_ptr = SendPtr::new(classes.as_mut_ptr());
        let counts_ptr = SendPtr::new(counts.as_mut_ptr());
        let data_ro: &[T] = data;
        let class_of = &class_of;
        let cursor = AtomicUsize::new(0);
        pool.broadcast(|ctx| loop {
            crate::chaos::chunk_claim(ctx.tid);
            let b = cursor.fetch_add(1, Ordering::Relaxed);
            if b >= nchunks {
                break;
            }
            let lo = b * chunk;
            let hi = ((b + 1) * chunk).min(n);
            for (i, x) in data_ro.iter().enumerate().take(hi).skip(lo) {
                let c = class_of(x);
                assert!(c < nclasses, "class {c} out of range (nclasses {nclasses})");
                // SAFETY: chunks are disjoint index ranges of `classes`,
                // and chunk `b` is the only writer of matrix column `b`.
                unsafe {
                    *classes_ptr.get().add(i) = c as u16;
                    *counts_ptr.get().add(c * nchunks + b) += 1;
                }
            }
        });
        // SAFETY: the chunks partition 0..n, so every id slot was written.
        unsafe { classes.set_len(n) };
    }

    // Pass 2 (sequential, nclasses * nchunks entries): scan the count matrix.
    let total = exclusive_scan_in_place(&mut counts);
    debug_assert_eq!(total as usize, n);
    bounds.extend((0..nclasses).map(|c| counts[c * nchunks] as usize));
    bounds.push(n);

    // Pass 3: scatter each chunk's elements to their class slots. The
    // scratch lease's len stays 0 — elements move in and back out bitwise
    // through raw pointers, so returning the buffer never drops a `T`.
    // The scanned offset matrix doubles as the per-(class, chunk) write
    // cursors: chunk `b` still owns column `b`, so it advances those
    // entries in place.
    let mut scratch = arena.lease::<T>(n);
    {
        let scratch_ptr = SendPtr::new(scratch.as_mut_ptr());
        let offsets_ptr = SendPtr::new(counts.as_mut_ptr());
        let data_ro: &[T] = data;
        let classes_ro: &[u16] = &classes;
        let cursor = AtomicUsize::new(0);
        pool.broadcast(|ctx| loop {
            crate::chaos::chunk_claim(ctx.tid);
            let b = cursor.fetch_add(1, Ordering::Relaxed);
            if b >= nchunks {
                break;
            }
            let lo = b * chunk;
            let hi = ((b + 1) * chunk).min(n);
            for (i, &cls) in classes_ro.iter().enumerate().take(hi).skip(lo) {
                let c = cls as usize;
                // SAFETY: the scan makes (class, chunk) destination ranges
                // disjoint and chunk `b` is the sole reader/writer of its
                // cursor column, so each scratch slot is written exactly
                // once; the element is moved bitwise — never dropped or
                // aliased.
                unsafe {
                    let slot = offsets_ptr.get().add(c * nchunks + b);
                    let dst = *slot as usize;
                    *slot += 1;
                    std::ptr::copy_nonoverlapping(
                        data_ro.as_ptr().add(i),
                        scratch_ptr.get().add(dst),
                        1,
                    );
                }
            }
        });
    }
    // SAFETY: every element of `data` was moved into `scratch` exactly once;
    // copying the permutation back restores ownership in `data`. `scratch`
    // keeps len 0, so returning it to the arena drops no `T`.
    unsafe {
        std::ptr::copy_nonoverlapping(scratch.as_ptr(), data.as_mut_ptr(), n);
    }
}

/// Chunked count–scan–emit skeleton over `0..n`, with the per-chunk count
/// buffer leased from `arena`.
///
/// The range is cut into a fixed grid of chunks (the same grid both
/// passes use). Pass 1 calls `count(chunk)` for every chunk; the counts
/// are exclusively scanned; pass 2 calls `emit(chunk, base)` where `base`
/// is the chunk's scanned output offset, and `emit` must return how many
/// outputs it produced (checked against the scan under debug assertions).
/// Returns the total output count.
///
/// Single-thread pools and small `n` skip straight to one `emit(0..n, 0)`
/// call, so `emit` must subsume `count`'s work on that path.
pub fn count_scan_chunks<C, E>(
    pool: &ThreadPool,
    n: usize,
    arena: &ScratchArena,
    count: C,
    emit: E,
) -> usize
where
    C: Fn(Range<usize>) -> u64 + Sync,
    E: Fn(Range<usize>, u64) -> u64 + Sync,
{
    if n == 0 {
        return 0;
    }
    if pool.threads() == 1 || n < PAR_THRESHOLD {
        return emit(0..n, 0) as usize;
    }
    let nchunks = (pool.threads() * 8).min(n);
    let chunk = n.div_ceil(nchunks);
    let nchunks = n.div_ceil(chunk);

    let mut counts = arena.lease::<u64>(nchunks);
    {
        let counts_ptr = SendPtr::new(counts.as_mut_ptr());
        let count = &count;
        let cursor = AtomicUsize::new(0);
        pool.broadcast(|ctx| loop {
            crate::chaos::chunk_claim(ctx.tid);
            let b = cursor.fetch_add(1, Ordering::Relaxed);
            if b >= nchunks {
                break;
            }
            let lo = b * chunk;
            let hi = ((b + 1) * chunk).min(n);
            // SAFETY: one writer per chunk slot.
            unsafe { *counts_ptr.get().add(b) = count(lo..hi) };
        });
        // SAFETY: the chunk grid covers 0..nchunks, every slot written.
        unsafe { counts.set_len(nchunks) };
    }
    let total = exclusive_scan_in_place(&mut counts);
    {
        let counts_ro: &[u64] = &counts;
        let emit = &emit;
        let cursor = AtomicUsize::new(0);
        pool.broadcast(|ctx| loop {
            crate::chaos::chunk_claim(ctx.tid);
            let b = cursor.fetch_add(1, Ordering::Relaxed);
            if b >= nchunks {
                break;
            }
            let lo = b * chunk;
            let hi = ((b + 1) * chunk).min(n);
            let emitted = emit(lo..hi, counts_ro[b]);
            let expected =
                if b + 1 < nchunks { counts_ro[b + 1] } else { total } - counts_ro[b];
            if cfg!(debug_assertions) {
                assert_eq!(
                    emitted, expected,
                    "emit for chunk {b} produced {emitted} outputs, counted {expected}"
                );
            }
        });
    }
    total as usize
}

/// Parallel filtered map: `out` receives `f(i)` for every `i` in `0..n`
/// where `f` returns `Some`, in index order. `out` is cleared and refilled
/// in place; all intermediate state comes from `arena`, so once `out`'s
/// capacity has grown to its steady-state size the call allocates nothing.
///
/// `f` is evaluated twice per index (count pass + emit pass) and must be
/// deterministic; side-effecting predicates belong in
/// [`crate::scan::pack_indices_in`], which evaluates exactly once.
pub fn compact_map_into<T, F>(
    pool: &ThreadPool,
    arena: &ScratchArena,
    n: usize,
    out: &mut Vec<T>,
    f: F,
) where
    T: Send + 'static,
    F: Fn(usize) -> Option<T> + Sync,
{
    out.clear();
    out.reserve(n);
    let out_ptr = SendPtr::new(out.as_mut_ptr());
    let f = &f;
    let total = count_scan_chunks(
        pool,
        n,
        arena,
        |r| r.filter(|&i| f(i).is_some()).count() as u64,
        |r, base| {
            let mut k = base as usize;
            for i in r {
                if let Some(v) = f(i) {
                    // SAFETY: scanned bases make chunk output ranges
                    // disjoint, and `out` has capacity for n >= total
                    // elements; each slot in 0..total written exactly once.
                    unsafe { out_ptr.get().add(k).write(v) };
                    k += 1;
                }
            }
            (k - base as usize) as u64
        },
    );
    // SAFETY: exactly `total` leading slots were initialised above.
    unsafe { out.set_len(total) };
}

/// Groups the items `0..n` by a `u32` key into a CSR-shaped layout.
///
/// `key_of(i)` names item `i`'s group (`None` drops the item); `place(i,
/// slot)` stores item `i` at output position `slot`. On return `offsets`
/// holds `nkeys + 1` entries — the items of key `k` occupy output slots
/// `offsets[k]..offsets[k + 1]` — and the kept-item total is returned.
///
/// This is [`distribute_by_class_in`]'s sibling for *large* key spaces:
/// the class-matrix distribution stores class ids as `u16` and scans an
/// `nclasses x nchunks` matrix, which breaks down past 65 535 classes
/// (contracted-CSR rebuilds group arcs by component id, routinely in the
/// hundreds of thousands). Here the histogram is a flat `u64` array built
/// with atomic adds and the scatter claims slots through per-key atomic
/// cursors, so the cost is `O(n + nkeys)` regardless of the key width.
/// The price is intra-key placement order: input order on the sequential
/// path, unordered under parallel execution — callers must not observe
/// intra-group order (CSR rows are order-free reductions, the same
/// contract `CsrGraph::from_edges_parallel` already documents).
///
/// `key_of` is evaluated twice per item (count pass + scatter pass) and
/// must be deterministic. All intermediate state is leased from `arena`
/// and `offsets` is refilled in place, so steady-state calls allocate
/// nothing once `offsets`' capacity has reached `nkeys + 1`.
///
/// # Panics
/// Panics when `key_of` returns a key `>= nkeys`.
pub fn group_by_key_in<K, P>(
    pool: &ThreadPool,
    arena: &ScratchArena,
    n: usize,
    nkeys: usize,
    offsets: &mut Vec<u64>,
    key_of: K,
    place: P,
) -> usize
where
    K: Fn(usize) -> Option<u32> + Sync,
    P: Fn(usize, usize) + Sync,
{
    offsets.clear();
    if pool.threads() == 1 || n < PAR_THRESHOLD {
        offsets.resize(nkeys + 1, 0);
        for i in 0..n {
            if let Some(k) = key_of(i) {
                let k = k as usize;
                assert!(k < nkeys, "key {k} out of range (nkeys {nkeys})");
                offsets[k + 1] += 1;
            }
        }
        for k in 1..=nkeys {
            offsets[k] += offsets[k - 1];
        }
        let total = offsets[nkeys] as usize;
        let mut cursors = arena.lease::<u64>(nkeys);
        cursors.extend_from_slice(&offsets[..nkeys]);
        for i in 0..n {
            if let Some(k) = key_of(i) {
                let slot = cursors[k as usize] as usize;
                cursors[k as usize] += 1;
                place(i, slot);
            }
        }
        return total;
    }

    let cfg = crate::parallel_for::ParallelForConfig::default();
    // Pass 1: atomic histogram over the flat key space. Contention is
    // per-key, so heavy groups (high-degree components) see the most
    // traffic — acceptable: a fetch_add per item is still far cheaper
    // than a u16-capped class matrix at these key widths.
    let mut counts = arena.lease_filled::<u64>(pool, cfg, nkeys, 0u64);
    {
        let cells = crate::atomics::as_atomic_u64(&mut counts);
        let key_of = &key_of;
        crate::parallel_for(pool, 0..n, cfg, |i| {
            if let Some(k) = key_of(i) {
                let k = k as usize;
                assert!(k < nkeys, "key {k} out of range (nkeys {nkeys})");
                cells[k].fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    // Pass 2 (sequential, nkeys entries): exclusive scan into the caller's
    // offsets, with the grand total appended as the closing sentinel.
    offsets.extend_from_slice(&counts);
    let total = exclusive_scan_in_place(offsets);
    offsets.push(total);

    // Pass 3: scatter through per-key atomic cursors (the counts lease is
    // recycled as the cursor array — same size, same shelf).
    counts.clear();
    counts.extend_from_slice(&offsets[..nkeys]);
    {
        let cursors = crate::atomics::as_atomic_u64(&mut counts);
        let key_of = &key_of;
        let place = &place;
        crate::parallel_for(pool, 0..n, cfg, |i| {
            if let Some(k) = key_of(i) {
                let slot = cursors[k as usize].fetch_add(1, Ordering::Relaxed);
                place(i, slot as usize);
            }
        });
    }
    total as usize
}

/// Sequential [`distribute_by_class`] (same counting scatter, one thread).
fn distribute_seq<T, F>(data: &mut [T], nclasses: usize, class_of: &F) -> Vec<usize>
where
    F: Fn(&T) -> usize,
{
    let n = data.len();
    let mut classes: Vec<u16> = Vec::with_capacity(n);
    let mut counts: Vec<u64> = vec![0; nclasses];
    for x in data.iter() {
        let c = class_of(x);
        assert!(c < nclasses, "class {c} out of range (nclasses {nclasses})");
        classes.push(c as u16);
        counts[c] += 1;
    }
    exclusive_scan_in_place(&mut counts);
    let mut bounds: Vec<usize> = counts.iter().map(|&c| c as usize).collect();
    bounds.push(n);
    let mut cursors: Vec<usize> = bounds[..nclasses].to_vec();
    let mut scratch: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit` needs no initialisation; every slot is written
    // exactly once below before the copy back reads it.
    unsafe { scratch.set_len(n) };
    for (i, &c) in classes.iter().enumerate() {
        let dst = cursors[c as usize];
        cursors[c as usize] += 1;
        // SAFETY: one cursor step per element keeps destinations disjoint;
        // the element is moved bitwise, never dropped here.
        unsafe { scratch[dst].write(std::ptr::read(&data[i])) };
    }
    // SAFETY: as in the parallel path — each element moved exactly once.
    unsafe {
        std::ptr::copy_nonoverlapping(scratch.as_ptr() as *const T, data.as_mut_ptr(), n);
    }
    bounds
}

/// Stable three-way partition by an [`Ordering`](CmpOrdering)-valued
/// classifier: `Less` elements first, then `Equal`, then `Greater`, each
/// class keeping its input order. Returns `(lt_len, eq_len)`.
pub fn partition3_in_place<T, F>(pool: &ThreadPool, data: &mut [T], classify: F) -> (usize, usize)
where
    T: Send + Sync + 'static,
    F: Fn(&T) -> CmpOrdering + Sync,
{
    let bounds = distribute_by_class(pool, data, 3, |x| match classify(x) {
        CmpOrdering::Less => 0,
        CmpOrdering::Equal => 1,
        CmpOrdering::Greater => 2,
    });
    (bounds[1], bounds[2] - bounds[1])
}

/// Sequential [`partition3_in_place`], for callers without a pool.
pub fn partition3_seq<T, F>(data: &mut [T], classify: F) -> (usize, usize)
where
    F: Fn(&T) -> CmpOrdering,
{
    let bounds = distribute_seq(data, 3, &|x: &T| match classify(x) {
        CmpOrdering::Less => 0,
        CmpOrdering::Equal => 1,
        CmpOrdering::Greater => 2,
    });
    (bounds[1], bounds[2] - bounds[1])
}

/// Parallel stable retain: keeps the elements satisfying `keep`, in input
/// order, and drops the rest — [`Vec::retain`] with the predicate evaluated
/// across the pool (exactly once per element).
pub fn retain_parallel<T, F>(pool: &ThreadPool, data: &mut Vec<T>, keep: F)
where
    T: Send + Sync + 'static,
    F: Fn(&T) -> bool + Sync,
{
    let bounds = distribute_by_class(pool, data, 2, |x| usize::from(!keep(x)));
    data.truncate(bounds[1]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    fn pseudo_random(n: usize) -> Vec<u64> {
        let mut x = 0x9E3779B97F4A7C15u64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    }

    #[test]
    fn distribute_matches_stable_sort_by_class() {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            for n in [0usize, 1, 7, 4095, 4096, 50_000] {
                for nclasses in [1usize, 2, 3, 16, 255] {
                    let mut v: Vec<(u64, usize)> = pseudo_random(n)
                        .into_iter()
                        .enumerate()
                        .map(|(i, x)| (x, i))
                        .collect();
                    let mut want = v.clone();
                    want.sort_by_key(|&(x, _)| x as usize % nclasses); // stable
                    let bounds =
                        distribute_by_class(&pool, &mut v, nclasses, |&(x, _)| {
                            x as usize % nclasses
                        });
                    assert_eq!(v, want, "threads={threads} n={n} nclasses={nclasses}");
                    assert_eq!(bounds.len(), nclasses + 1);
                    assert_eq!(bounds[0], 0);
                    assert_eq!(bounds[nclasses], n);
                    for c in 0..nclasses {
                        assert!(v[bounds[c]..bounds[c + 1]]
                            .iter()
                            .all(|&(x, _)| x as usize % nclasses == c));
                    }
                }
            }
        }
    }

    #[test]
    fn partition3_is_stable_and_counts_match() {
        let pool = ThreadPool::new(4);
        for n in [0usize, 1, 100, 4096, 30_000] {
            let mut v = pseudo_random(n);
            let pivot = u64::MAX / 3;
            let want_lt: Vec<u64> = v.iter().copied().filter(|&x| x < pivot).collect();
            let want_eq: Vec<u64> = v.iter().copied().filter(|&x| x == pivot).collect();
            let want_gt: Vec<u64> = v.iter().copied().filter(|&x| x > pivot).collect();
            let (lt, eq) = partition3_in_place(&pool, &mut v, |x| x.cmp(&pivot));
            assert_eq!(lt, want_lt.len(), "n={n}");
            assert_eq!(eq, want_eq.len(), "n={n}");
            assert_eq!(&v[..lt], &want_lt[..], "n={n}");
            assert_eq!(&v[lt..lt + eq], &want_eq[..], "n={n}");
            assert_eq!(&v[lt + eq..], &want_gt[..], "n={n}");
        }
    }

    #[test]
    fn partition3_seq_matches_parallel() {
        let pool = ThreadPool::new(4);
        let pivot = u64::MAX / 2;
        let mut a = pseudo_random(10_000);
        let mut b = a.clone();
        let ra = partition3_in_place(&pool, &mut a, |x| x.cmp(&pivot));
        let rb = partition3_seq(&mut b, |x| x.cmp(&pivot));
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn retain_matches_vec_retain() {
        let pool = ThreadPool::new(4);
        for n in [0usize, 10, 4096, 40_000] {
            let mut v = pseudo_random(n);
            let mut want = v.clone();
            want.retain(|&x| x % 3 == 0);
            retain_parallel(&pool, &mut v, |&x| x % 3 == 0);
            assert_eq!(v, want, "n={n}");
        }
    }

    /// A non-`Clone` payload whose drops are counted: proves the scatter
    /// neither duplicates nor leaks elements, and that `retain_parallel`
    /// drops exactly the rejected ones.
    struct Tracked {
        value: u64,
        drops: Arc<StdAtomicUsize>,
    }
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn retain_drops_each_rejected_element_exactly_once() {
        let pool = ThreadPool::new(4);
        let drops = Arc::new(StdAtomicUsize::new(0));
        let n = 20_000usize;
        let mut v: Vec<Tracked> = pseudo_random(n)
            .into_iter()
            .map(|x| Tracked {
                value: x,
                drops: Arc::clone(&drops),
            })
            .collect();
        retain_parallel(&pool, &mut v, |t| t.value % 4 != 0);
        let kept = v.len();
        let rejected = n - kept;
        assert_eq!(drops.load(Ordering::Relaxed), rejected);
        assert!(v.iter().all(|t| t.value % 4 != 0));
        drop(v);
        assert_eq!(drops.load(Ordering::Relaxed), n, "every element dropped once");
    }

    #[test]
    fn distribute_in_steady_state_reuses_arena() {
        let pool = ThreadPool::new(4);
        let arena = ScratchArena::new();
        let mut bounds = Vec::new();
        let v0 = pseudo_random(50_000);
        // Warm-up round grows the arena; later rounds must not.
        let mut v = v0.clone();
        distribute_by_class_in(&pool, &mut v, 16, &arena, &mut bounds, |&x| x as usize % 16);
        let footprint = arena.footprint_bytes();
        for round in 0..3 {
            let mut v = v0.clone();
            distribute_by_class_in(&pool, &mut v, 16, &arena, &mut bounds, |&x| {
                x as usize % 16
            });
            let mut want = v0.clone();
            want.sort_by_key(|&x| x as usize % 16);
            assert_eq!(v, want, "round={round}");
            assert_eq!(
                arena.footprint_bytes(),
                footprint,
                "steady-state round {round} grew the arena"
            );
        }
        assert!(arena.reuse_count() > 0);
    }

    #[test]
    fn count_scan_chunks_matches_sequential_filter() {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let arena = ScratchArena::new();
            for n in [0usize, 1, 4095, 4096, 60_000] {
                let keep = |i: usize| i.is_multiple_of(3);
                let out = Mutex::new(vec![false; n]);
                let total = count_scan_chunks(
                    &pool,
                    n,
                    &arena,
                    |r| r.filter(|&i| keep(i)).count() as u64,
                    |r, _base| {
                        let mut m = out.lock();
                        let mut k = 0;
                        for i in r {
                            if keep(i) {
                                m[i] = true;
                                k += 1;
                            }
                        }
                        k
                    },
                );
                assert_eq!(total, (0..n).filter(|&i| keep(i)).count(), "n={n}");
                assert!(out.lock().iter().enumerate().all(|(i, &v)| v == keep(i)));
            }
        }
    }

    #[test]
    fn compact_map_matches_filter_map() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let arena = ScratchArena::new();
            let mut out: Vec<u64> = Vec::new();
            for n in [0usize, 7, 4096, 50_000] {
                let f = |i: usize| (i % 7 < 3).then(|| (i * 2) as u64);
                compact_map_into(&pool, &arena, n, &mut out, f);
                let want: Vec<u64> = (0..n).filter_map(f).collect();
                assert_eq!(*out, want, "threads={threads} n={n}");
            }
        }
    }

    use crate::sync::Mutex;

    /// Reference grouping: per-key item lists in input order.
    fn group_reference(
        n: usize,
        nkeys: usize,
        key_of: impl Fn(usize) -> Option<u32>,
    ) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); nkeys];
        for i in 0..n {
            if let Some(k) = key_of(i) {
                groups[k as usize].push(i);
            }
        }
        groups
    }

    fn check_grouping(
        threads: usize,
        n: usize,
        nkeys: usize,
        key_of: impl Fn(usize) -> Option<u32> + Sync + Copy,
    ) {
        use std::sync::atomic::AtomicU64;
        let pool = ThreadPool::new(threads);
        let arena = ScratchArena::new();
        let mut offsets = Vec::new();
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        let total = group_by_key_in(&pool, &arena, n, nkeys, &mut offsets, key_of, |i, slot| {
            let prev = out[slot].swap(i as u64, Ordering::Relaxed);
            assert_eq!(prev, u64::MAX, "slot {slot} written twice");
        });
        let groups = group_reference(n, nkeys, key_of);
        let want_total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, want_total, "threads={threads} n={n} nkeys={nkeys}");
        assert_eq!(offsets.len(), nkeys + 1);
        assert_eq!(offsets[0], 0);
        assert_eq!(offsets[nkeys] as usize, want_total);
        for k in 0..nkeys {
            let lo = offsets[k] as usize;
            let hi = offsets[k + 1] as usize;
            let mut got: Vec<usize> = out[lo..hi]
                .iter()
                .map(|s| s.load(Ordering::Relaxed) as usize)
                .collect();
            if threads == 1 {
                // Sequential path is stable: exact input order per key.
                assert_eq!(got, groups[k], "key {k} order (threads=1)");
            } else {
                got.sort_unstable();
                assert_eq!(got, groups[k], "key {k} membership");
            }
        }
    }

    #[test]
    fn group_by_key_matches_reference() {
        for threads in [1, 2, 4] {
            for n in [0usize, 5, 4095, 4096, 50_000] {
                check_grouping(threads, n, 97, |i| {
                    (i % 7 != 0).then(|| ((i as u64).wrapping_mul(0x9E37) % 97) as u32)
                });
            }
        }
    }

    #[test]
    fn group_by_key_supports_wide_key_spaces() {
        // More keys than u16 can index: the gap distribute_by_class_in
        // cannot cover (its class ids are u16).
        let nkeys = 100_000usize;
        assert!(nkeys > u16::MAX as usize);
        for threads in [1, 4] {
            check_grouping(threads, 60_000, nkeys, |i| {
                Some(((i as u64).wrapping_mul(0x9E3779B9) % 100_000) as u32)
            });
        }
    }

    #[test]
    fn group_by_key_drops_none_items_entirely() {
        check_grouping(4, 20_000, 13, |i| (i % 2 == 0).then_some((i % 13) as u32));
        // All-dropped input still yields well-formed (all-zero) offsets.
        check_grouping(4, 10_000, 5, |_| None);
    }

    #[test]
    fn group_by_key_steady_state_reuses_arena() {
        let pool = ThreadPool::new(4);
        let arena = ScratchArena::new();
        let mut offsets = Vec::new();
        let n = 50_000usize;
        let nkeys = 30_000usize;
        let key_of = |i: usize| (!i.is_multiple_of(3)).then(|| (i % nkeys) as u32);
        let sink = std::sync::atomic::AtomicU64::new(0);
        let run = |offsets: &mut Vec<u64>| {
            group_by_key_in(&pool, &arena, n, nkeys, offsets, key_of, |i, slot| {
                sink.fetch_add((i ^ slot) as u64, Ordering::Relaxed);
            })
        };
        let total = run(&mut offsets);
        let footprint = arena.footprint_bytes();
        for round in 0..3 {
            assert_eq!(run(&mut offsets), total);
            assert_eq!(
                arena.footprint_bytes(),
                footprint,
                "steady-state round {round} grew the arena"
            );
        }
        assert!(arena.reuse_count() > 0);
    }

    #[test]
    fn group_by_key_out_of_range_key_panics() {
        let pool = ThreadPool::new(1);
        let arena = ScratchArena::new();
        let mut offsets = Vec::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            group_by_key_in(&pool, &arena, 10, 3, &mut offsets, |i| Some(i as u32), |_, _| {});
        }));
        assert!(r.is_err());
    }

    #[test]
    fn out_of_range_class_panics() {
        let pool = ThreadPool::new(1);
        let mut v = vec![1u64, 2, 3];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            distribute_by_class(&pool, &mut v, 2, |&x| x as usize);
        }));
        assert!(r.is_err());
    }
}

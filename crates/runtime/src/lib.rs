//! # llp-runtime — parallel substrate for the LLP-MST reproduction
//!
//! The paper evaluates LLP-Prim on the Galois runtime and LLP-Boruvka on the
//! Graph Based Benchmark Suite (GBBS). Both frameworks contribute the same
//! ingredients: a pool of worker threads, chunked parallel loops, concurrent
//! insert-bags for frontiers, atomic priority/min writes and prefix sums.
//! This crate implements those ingredients from scratch so that the
//! algorithm crates exercise the same code paths as the paper's hosts.
//!
//! Components:
//!
//! * [`ThreadPool`] — a persistent SPMD pool: [`ThreadPool::broadcast`] runs
//!   one closure on every thread (the caller participates as thread 0).
//! * [`parallel_for()`](fn@parallel_for) / [`parallel_for_chunks`] — dynamically load-balanced
//!   parallel loops over index ranges.
//! * [`parallel_reduce`] / [`parallel_map_collect`] — parallel reductions.
//! * [`Bag`] — a per-thread insert bag (Galois `InsertBag` analogue) used to
//!   collect next-round frontiers without synchronization on the hot path.
//! * [`atomics`] — `AtomicF64`, order-preserving float encodings, atomic
//!   fetch-min by key (GBBS `priority_write` analogue).
//! * [`scan`] — sequential and parallel exclusive prefix sums.
//! * [`partition`] — scan-based counting distribution: stable parallel
//!   three-way partition and parallel retain (Filter-Kruskal's pivot
//!   partition and filter steps).
//! * [`sort`] — parallel sample sort (counting distribution into buckets)
//!   used by the Kruskal family.
//! * [`counters`] — relaxed instrumentation counters that let benchmarks
//!   report machine-independent work metrics (heap operations, rounds,
//!   pointer jumps) alongside wall-clock times.
//! * [`chaos`] — seeded schedule perturbation (randomized yields/delays at
//!   chunk claims, shuffled broadcast start order, adversarial grains)
//!   behind the `chaos` cargo feature, for concurrency testing.
//! * [`faults`] — seeded I/O fault injection (short reads/writes, transient
//!   errors, truncation, detectable corruption, ENOSPC) behind the `faults`
//!   cargo feature, for robustness testing of the I/O and serving stack.

pub mod atomics;
pub mod bag;
pub mod chaos;
pub mod counters;
pub mod faults;
pub mod parallel_for;
pub mod partition;
pub mod pool;
pub mod reduce;
pub mod rng;
pub mod scan;
pub mod scratch;
pub mod sort;
pub mod sync;
pub mod telemetry;

pub use bag::Bag;
pub use counters::Counter;
pub use parallel_for::{parallel_for, parallel_for_chunks, parallel_for_chunks_ctx, ParallelForConfig};
pub use pool::{ThreadPool, WorkerCtx};
pub use reduce::{parallel_map_collect, parallel_reduce, SendPtr};
pub use scratch::{ScratchArena, ScratchVec};

/// Number of hardware threads available to this process.
///
/// Falls back to 1 when the platform cannot report parallelism.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}

//! Fig. 3 — thread sweep on the road network: LLP-Prim vs parallel
//! Boruvka vs LLP-Boruvka at 1, 2, 4, 8 threads.
//!
//! Paper shape to check: LLP-Prim leads at low thread counts and plateaus
//! around 8; the Boruvka family scales further and crosses over, with
//! LLP-Boruvka at or below Boruvka's runtime throughout. (On machines with
//! few physical cores the wall-clock sweep saturates early; the CSVs from
//! `repro fig3` carry the machine-independent work metrics.)

use llp_bench::microbench::{BenchmarkId, Criterion};
use llp_bench::{criterion_group, criterion_main};
use llp_bench::{run_algorithm, Algorithm, Scale, Workload};
use llp_runtime::ThreadPool;

fn fig3(c: &mut Criterion) {
    let w = Workload::road(Scale::Small, 42);
    let algos = [Algorithm::LlpPrim, Algorithm::Boruvka, Algorithm::LlpBoruvka];
    let max_threads = llp_runtime::available_threads().clamp(4, 8);

    let mut group = c.benchmark_group("fig3_thread_sweep");
    group.sample_size(10);
    let mut threads = 1;
    while threads <= max_threads {
        let pool = ThreadPool::new(threads);
        for &algo in &algos {
            group.bench_with_input(
                BenchmarkId::new(algo.label(), format!("{threads}T")),
                &w.graph,
                |b, graph| b.iter(|| run_algorithm(algo, graph, 0, &pool)),
            );
        }
        threads *= 2;
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);

//! Microbenchmarks of the substrates the algorithms stand on: heaps,
//! union–find, prefix sums, parallel sort, MWE precomputation.
//!
//! These attribute end-to-end differences to components (e.g. how much of
//! Prim's time is heap traffic) and guard against substrate regressions.

use llp_bench::microbench::{black_box, Criterion};
use llp_bench::{criterion_group, criterion_main};
use llp_bench::{Scale, Workload};
use llp_mst::heap::{IndexedHeap, LazyHeap};
use llp_mst::union_find::{ConcurrentUnionFind, UnionFind};
use llp_runtime::ThreadPool;

fn xorshift(mut x: u64) -> impl FnMut() -> u64 {
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

fn substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_substrates");
    group.sample_size(20);

    let n = 50_000usize;

    group.bench_function("lazy_heap_push_pop_50k", |b| {
        b.iter(|| {
            let mut rand = xorshift(0xDEADBEEF);
            let mut h: LazyHeap<u64> = LazyHeap::new();
            for i in 0..n as u32 {
                h.push(rand(), i);
            }
            let mut acc = 0u64;
            while let Some((k, _)) = h.pop() {
                acc = acc.wrapping_add(k);
            }
            black_box(acc)
        })
    });

    group.bench_function("indexed_heap_mixed_50k", |b| {
        b.iter(|| {
            let mut rand = xorshift(0xC0FFEE);
            let mut h: IndexedHeap<u64> = IndexedHeap::new(n);
            for _ in 0..n {
                h.insert_or_adjust((rand() % n as u64) as u32, rand());
            }
            let mut acc = 0u64;
            while let Some((k, _)) = h.pop_min() {
                acc = acc.wrapping_add(k);
            }
            black_box(acc)
        })
    });

    group.bench_function("union_find_seq_50k", |b| {
        b.iter(|| {
            let mut rand = xorshift(0xFACADE);
            let mut uf = UnionFind::new(n);
            for _ in 0..n {
                uf.union((rand() % n as u64) as u32, (rand() % n as u64) as u32);
            }
            black_box(uf.num_components())
        })
    });

    group.bench_function("union_find_concurrent_50k_seqdrive", |b| {
        b.iter(|| {
            let mut rand = xorshift(0xBEEF);
            let uf = ConcurrentUnionFind::new(n);
            for _ in 0..n {
                uf.union((rand() % n as u64) as u32, (rand() % n as u64) as u32);
            }
            black_box(uf.find(0))
        })
    });

    let values: Vec<u64> = (0..200_000u64).map(|i| i % 17).collect();
    let pool = ThreadPool::new(llp_runtime::available_threads().min(4));
    group.bench_function("exclusive_scan_200k", |b| {
        b.iter(|| black_box(llp_runtime::scan::exclusive_scan(&pool, &values)))
    });

    group.bench_function("par_sort_200k", |b| {
        let mut rand = xorshift(0xABCD);
        let data: Vec<u64> = (0..200_000).map(|_| rand()).collect();
        b.iter(|| {
            let mut v = data.clone();
            llp_runtime::sort::par_sort(&pool, &mut v);
            black_box(v.len())
        })
    });

    let w = Workload::road(Scale::Small, 42);
    group.bench_function("compute_mwe_road_small", |b| {
        b.iter(|| black_box(w.graph.compute_mwe(&pool)))
    });

    group.finish();
}

criterion_group!(benches, substrates);
criterion_main!(benches);

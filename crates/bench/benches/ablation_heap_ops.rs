//! Ablation — the §V design choices, isolated:
//!
//! * Prim's heap discipline: lazy duplicates vs indexed decrease-key.
//! * LLP-Prim's early fixing: how much heap traffic it removes (asserted
//!   as a side effect; timed against classic Prim).
//! * Boruvka synchronization: GBBS-style CAS/union-find baseline vs
//!   LLP-Boruvka's relaxed pointer jumping.

use llp_bench::microbench::{BenchmarkId, Criterion};
use llp_bench::{criterion_group, criterion_main};
use llp_bench::{run_algorithm, Algorithm, Scale, Workload};
use llp_runtime::ThreadPool;

fn ablation(c: &mut Criterion) {
    let w = Workload::road(Scale::Small, 42);
    let pool1 = ThreadPool::new(1);
    let pool = ThreadPool::new(llp_runtime::available_threads().min(4));

    // Sanity side-check once, outside the timing loop: the headline
    // mechanism must hold or the timings are meaningless.
    let prim = run_algorithm(Algorithm::Prim, &w.graph, 0, &pool1);
    let llp = run_algorithm(Algorithm::LlpPrimSeq, &w.graph, 0, &pool1);
    assert!(
        llp.stats.heap_ops() < prim.stats.heap_ops(),
        "LLP-Prim must reduce heap traffic ({} vs {})",
        llp.stats.heap_ops(),
        prim.stats.heap_ops()
    );

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for (label, algo, p) in [
        ("prim_lazy_heap", Algorithm::Prim, &pool1),
        ("prim_indexed_heap", Algorithm::PrimIndexed, &pool1),
        ("llp_prim_early_fixing", Algorithm::LlpPrimSeq, &pool1),
        ("boruvka_cas_baseline", Algorithm::Boruvka, &pool),
        ("llp_boruvka_pointer_jump", Algorithm::LlpBoruvka, &pool),
        ("kruskal_reference", Algorithm::Kruskal, &pool1),
        ("boruvka_bfs_sequential", Algorithm::BoruvkaSeq, &pool1),
    ] {
        group.bench_with_input(BenchmarkId::new(label, &w.name), &w.graph, |b, graph| {
            b.iter(|| run_algorithm(algo, graph, 0, p))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);

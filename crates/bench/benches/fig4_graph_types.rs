//! Fig. 4 — the parallel algorithms at a low and a high thread count on
//! both graph morphologies (road vs scale-free).
//!
//! Paper shape to check: LLP-Prim relatively stronger on the denser
//! scale-free graph and at the low thread count; the Boruvka family
//! stronger at the high thread count with LLP-Boruvka modestly ahead.

use llp_bench::microbench::{BenchmarkId, Criterion};
use llp_bench::{criterion_group, criterion_main};
use llp_bench::{run_algorithm, Algorithm, Scale, Workload};
use llp_runtime::ThreadPool;

fn fig4(c: &mut Criterion) {
    let workloads = [
        Workload::road(Scale::Small, 42),
        Workload::rmat(Scale::Small, 42),
    ];
    let algos = [Algorithm::LlpPrim, Algorithm::Boruvka, Algorithm::LlpBoruvka];
    let high = llp_runtime::available_threads().clamp(4, 8);

    let mut group = c.benchmark_group("fig4_graph_types");
    group.sample_size(10);
    for w in &workloads {
        for threads in [2usize, high] {
            let pool = ThreadPool::new(threads);
            for &algo in &algos {
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("{}/{}T", algo.label(), threads),
                        &w.name,
                    ),
                    &w.graph,
                    |b, graph| b.iter(|| run_algorithm(algo, graph, 0, &pool)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);

//! Fig. 2 — single-threaded comparison: Prim vs LLP-Prim (1T) vs Boruvka,
//! on the road network and the Graph500 RMAT graph.
//!
//! Paper shape to check: LLP-Prim (1T) faster than Prim (21–27%); both
//! roughly 3x faster than single-threaded Boruvka.

use llp_bench::microbench::{BenchmarkId, Criterion};
use llp_bench::{criterion_group, criterion_main};
use llp_bench::{run_algorithm, Algorithm, Scale, Workload};
use llp_runtime::ThreadPool;

fn fig2(c: &mut Criterion) {
    let workloads = [
        Workload::road(Scale::Small, 42),
        Workload::rmat(Scale::Small, 42),
    ];
    let pool = ThreadPool::new(1);
    let algos = [
        Algorithm::Prim,
        Algorithm::LlpPrimSeq,
        Algorithm::Boruvka, // single-threaded pool, as in the paper's Fig. 2
    ];

    let mut group = c.benchmark_group("fig2_single_thread");
    group.sample_size(10);
    for w in &workloads {
        for &algo in &algos {
            group.bench_with_input(
                BenchmarkId::new(algo.label(), &w.name),
                &w.graph,
                |b, graph| b.iter(|| run_algorithm(algo, graph, 0, &pool)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);

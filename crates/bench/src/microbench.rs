//! A tiny micro-benchmark runner with a criterion-compatible surface.
//!
//! Hermetic builds have no registry access, so the `benches/` targets cannot
//! link `criterion`. This module reimplements the narrow slice of its API the
//! benches actually use — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — on a plain timing loop.
//!
//! Each benchmark runs one warm-up sample plus `sample_size` timed samples
//! (each sample is a single closure invocation; these benches measure
//! whole-graph algorithm runs, not nanosecond kernels) and reports
//! median / min / max wall time to stdout:
//!
//! ```text
//! fig2_single_thread/prim/road-small  median 12.345 ms  min 12.001 ms  max 13.210 ms  (10 samples)
//! ```
//!
//! Environment knobs:
//! * `LLP_BENCH_SAMPLES` — override every group's sample count.

pub use std::hint::black_box;

use std::time::Instant;

/// Top-level handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchGroup {
        println!("== {name} ==");
        BenchGroup {
            name: name.to_string(),
            sample_size: default_sample_size(),
        }
    }
}

fn default_sample_size() -> usize {
    std::env::var("LLP_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(10)
}

/// Identifier `label/parameter`, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Combines a function label with a parameter description.
    pub fn new(label: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{label}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
#[derive(Debug)]
pub struct BenchGroup {
    name: String,
    sample_size: usize,
}

impl BenchGroup {
    /// Sets the number of timed samples per benchmark (the `LLP_BENCH_SAMPLES`
    /// environment variable still wins so CI can run quick smoke passes).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = std::env::var("LLP_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(n);
        self
    }

    /// Runs a benchmark identified only by a name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.0, &mut b.samples_ns);
    }

    /// Runs a benchmark parameterised by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id.0, &mut b.samples_ns);
    }

    /// Ends the group (stdout reporting needs no teardown; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` performs the timing.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<u64>,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        self.samples_ns.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples_ns.push(t0.elapsed().as_nanos() as u64);
        }
    }
}

fn report(group: &str, id: &str, samples_ns: &mut [u64]) {
    if samples_ns.is_empty() {
        println!("{group}/{id}  (no samples — closure never called iter)");
        return;
    }
    samples_ns.sort_unstable();
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = samples_ns[samples_ns.len() - 1];
    println!(
        "{group}/{id}  median {}  min {}  max {}  ({} samples)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
        samples_ns.len()
    );
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Mirrors `criterion_group!`: defines a function running each benchmark fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::microbench::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion_main!`: defines `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_input_through() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(2);
        let data = vec![1u64, 2, 3];
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", "vec3"), &data, |b, d| {
            b.iter(|| {
                seen = d.iter().sum();
                seen
            })
        });
        assert_eq!(seen, 6);
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.500 us");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_500_000_000), "3.500 s");
    }
}

//! `differential` — cross-algorithm differential tester under chaos
//! scheduling.
//!
//! ```text
//! differential sweep [options]     (default command)
//!   --families LIST   comma list of road,rmat,er,ba,rgg (default: road,rmat,er,ba)
//!   --gen-seeds LIST  comma list of generator seeds (default: 1,2)
//!   --chaos-seeds LIST comma list of chaos seeds (default: 1,2,3,4)
//!   --threads N       pool size per run (default: 4)
//!   --size N          approximate vertex count per graph (default: 4000)
//!
//! differential perf [options]
//!   --threads N       pool size for construction and the parallel certifier (default: 4)
//!   --seed N          RMAT seed (default: 42)
//!   --llp-baseline-ms X  pre-flat-engine LLP-Boruvka reference time (default: 11181.8)
//!
//! differential fault-matrix [options]   (requires --features faults)
//!   --fault-seeds LIST  comma list of LLP_FAULT_SEED values (default: 1..16)
//!   --threads N         pool size (default: 4)
//!   --size N            approximate vertex count (default: 4000)
//!   --seed N            generator seed (default: 42)
//!   --watchdog-secs N   hard wall-clock bound; exit 4 on expiry (default: 300)
//! ```
//!
//! `sweep` fans every algorithm in [`Algorithm::all`] across generator
//! families × generator seeds × chaos seeds, certifies every output with
//! the oracle-free near-linear certifier, and cross-checks that all
//! algorithms return the identical canonical edge set. On any failure it
//! reports the lexicographically minimal failing `(family, gen-seed,
//! chaos-seed)` triple — the smallest reproducer — and exits nonzero.
//!
//! `perf` runs four release-mode gates on the same ≥1M-vertex Graph500
//! RMAT graph. First, the certifier's headline property: path-max
//! certification of a parallel Borůvka run completes in under 20% of that
//! construction's time, with no Kruskal oracle — certification is cheap
//! enough to ride along every benchmark run (the `certified` field of
//! `llp-mst-run-report/v1`). Second, the Kruskal-family gate: at 8 or more
//! threads `filter_kruskal_par` must beat `kruskal_par_sort` wall-clock
//! (the parallel filter discards most of the m >> n heavy edges without
//! sorting them); below 8 threads the comparison is printed but
//! informational. Third, the flat-memory engine gate: LLP-Boruvka (packed
//! MWE words + zero-allocation rounds) must run at least 1.25x faster than
//! the recorded pre-flat-engine baseline on this same workload
//! (`--llp-baseline-ms`, default the 8-thread number recorded before the
//! engine landed); enforced at 8 or more threads, informational below.
//! Fourth, the SpMV-backend gate: the algebraic SpMV-Borůvka formulation
//! (min-plus row argmin + SpGEMM contraction) must stay within 3x of the
//! direct parallel Borůvka on the same graph — the matrix backend pays
//! for explicit contraction rebuilds and must remain in the same
//! performance class, not just be correct; enforced at 8 or more threads,
//! informational below.
//! Every timed run is certified (certification excluded from the timing)
//! and one extra chaos-seeded run must certify and agree exactly. Exits
//! nonzero if any gate fails (build with `--release`; debug timings are
//! meaningless).
//!
//! Chaos perturbation requires the `chaos` cargo feature
//! (`cargo run --release --features chaos --bin differential`); without it
//! the sweep still runs and certifies, but the chaos seeds are inert and
//! the binary says so.
//!
//! `fault-matrix` is the robustness counterpart of `sweep`: instead of
//! perturbing schedules it injects I/O faults (short reads/writes,
//! `Interrupted`, `WouldBlock`, truncation, corruption, `ENOSPC`) via
//! `llp_runtime::faults` and sweeps the seeds across four legs — binary
//! ingest read, atomic-install write, the checkpointed sharded solver
//! (with a crash-resume re-run whenever the injected fault aborts it),
//! and a live query server driven by the retrying load generator with
//! every response verified against the local certified index. Every run
//! must end in a certified-correct result or a typed, classified error:
//! a wrong answer anywhere fails the matrix, and a watchdog thread turns
//! any hang into a hard exit. Without `--features faults` the command
//! refuses to run rather than green-lighting an inert matrix.

use llp_bench::{run_algorithm, Algorithm};
use llp_graph::algo::largest_component;
use llp_graph::generators::{
    barabasi_albert, erdos_renyi, random_geometric, rmat, road_network, RmatParams, RoadParams,
};
use llp_graph::io::{read_binary_file, write_binary, BinaryFileWriter};
use llp_graph::CsrGraph;
use llp_mst::certify::{certify_msf, certify_msf_par};
use llp_mst::prelude::{
    filter_kruskal_par, kruskal, kruskal_par_sort, sharded_msf_file, ShardedConfig, ShardedError,
};
use llp_runtime::{chaos, faults, ThreadPool};
use llp_serve::loadgen::{run_sweep, LoadgenConfig};
use llp_serve::protocol::{encode_queries, write_frame, Query};
use llp_serve::server::{run_server, ServerConfig};
use llp_serve::service::MsfService;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A generator family in the sweep, ordered as written on the command line
/// (the order used for minimal-reproducer ranking).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Family {
    Road,
    Rmat,
    Er,
    Ba,
    Rgg,
}

impl Family {
    fn parse(s: &str) -> Option<Family> {
        match s {
            "road" => Some(Family::Road),
            "rmat" => Some(Family::Rmat),
            "er" => Some(Family::Er),
            "ba" => Some(Family::Ba),
            "rgg" => Some(Family::Rgg),
            _ => None,
        }
    }

    fn label(&self) -> &'static str {
        match self {
            Family::Road => "road",
            Family::Rmat => "rmat",
            Family::Er => "er",
            Family::Ba => "ba",
            Family::Rgg => "rgg",
        }
    }

    /// Builds a connected graph of roughly `size` vertices. Families that
    /// do not guarantee connectivity are cut to their giant component so
    /// the Prim-family algorithms apply.
    fn build(&self, size: usize, seed: u64) -> CsrGraph {
        match self {
            Family::Road => {
                let side = (size as f64).sqrt().ceil() as usize;
                road_network(RoadParams::usa_like(side.max(2), side.max(2), seed))
            }
            Family::Rmat => {
                let scale = (usize::BITS - size.next_power_of_two().leading_zeros() - 1).max(4);
                largest_component(&rmat(RmatParams::graph500(scale, 8, seed)))
            }
            Family::Er => largest_component(&erdos_renyi(size, size * 4, seed)),
            Family::Ba => barabasi_albert(size, 3, seed),
            Family::Rgg => {
                // radius ~ sqrt(8/n) keeps the giant component near-total.
                let r = (8.0 / size as f64).sqrt();
                largest_component(&random_geometric(size, r, seed))
            }
        }
    }
}

struct Options {
    families: Vec<Family>,
    gen_seeds: Vec<u64>,
    chaos_seeds: Vec<u64>,
    fault_seeds: Vec<u64>,
    threads: usize,
    size: usize,
    seed: u64,
    llp_baseline_ms: f64,
    watchdog_secs: u64,
}

/// LLP-Boruvka wall time recorded on the perf workload (scale-21 Graph500
/// RMAT giant component, seed 42, 8 threads) immediately before the
/// flat-memory contraction engine landed — the denominator of the
/// `perf` command's third gate. Override with `--llp-baseline-ms` when
/// re-baselining on different hardware.
const LLP_BASELINE_MS: f64 = 11181.8;

fn parse_list(name: &str, v: &str) -> Vec<u64> {
    v.split(',')
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("{name}: '{s}' is not an integer");
                std::process::exit(2);
            })
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.first().map(String::as_str) {
        Some("sweep") => ("sweep", &args[1..]),
        Some("perf") => ("perf", &args[1..]),
        Some("fault-matrix") => ("fault-matrix", &args[1..]),
        Some(s) if s.starts_with("--") => ("sweep", &args[..]),
        None => ("sweep", &args[..]),
        Some(other) => {
            eprintln!(
                "unknown command {other}; usage: differential [sweep|perf|fault-matrix] [options]"
            );
            std::process::exit(2);
        }
    };

    let mut opts = Options {
        families: vec![Family::Road, Family::Rmat, Family::Er, Family::Ba],
        gen_seeds: vec![1, 2],
        chaos_seeds: vec![1, 2, 3, 4],
        fault_seeds: (1..=16).collect(),
        threads: 4,
        size: 4000,
        seed: 42,
        llp_baseline_ms: LLP_BASELINE_MS,
        watchdog_secs: 300,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--families" => {
                let v = value("--families");
                opts.families = v
                    .split(',')
                    .map(|s| {
                        Family::parse(s.trim()).unwrap_or_else(|| {
                            eprintln!("unknown family '{s}'");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--gen-seeds" => opts.gen_seeds = parse_list("--gen-seeds", &value("--gen-seeds")),
            "--chaos-seeds" => {
                opts.chaos_seeds = parse_list("--chaos-seeds", &value("--chaos-seeds"))
            }
            "--fault-seeds" => {
                opts.fault_seeds = parse_list("--fault-seeds", &value("--fault-seeds"))
            }
            "--watchdog-secs" => {
                opts.watchdog_secs = value("--watchdog-secs").parse().expect("--watchdog-secs N")
            }
            "--threads" => opts.threads = value("--threads").parse().expect("--threads N"),
            "--size" => opts.size = value("--size").parse().expect("--size N"),
            "--seed" => opts.seed = value("--seed").parse().expect("--seed N"),
            "--llp-baseline-ms" => {
                opts.llp_baseline_ms = value("--llp-baseline-ms")
                    .parse()
                    .expect("--llp-baseline-ms X")
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    let failed = match command {
        "sweep" => sweep(&opts),
        "fault-matrix" => fault_matrix(&opts),
        _ => perf(&opts),
    };
    if failed {
        std::process::exit(1);
    }
}

/// One failing configuration, ordered for minimal-reproducer reporting.
struct Failure {
    family_rank: usize,
    family: Family,
    gen_seed: u64,
    chaos_seed: u64,
    algo: Algorithm,
    what: String,
}

fn sweep(opts: &Options) -> bool {
    if !chaos::compiled_in() {
        println!(
            "note: chaos feature not compiled in — chaos seeds are inert \
             (rebuild with --features chaos for schedule perturbation)"
        );
    }
    let pool = ThreadPool::new(opts.threads);
    let mut failures: Vec<Failure> = Vec::new();
    let mut runs = 0usize;

    for (family_rank, &family) in opts.families.iter().enumerate() {
        for &gen_seed in &opts.gen_seeds {
            let graph = family.build(opts.size, gen_seed);
            println!(
                "[{}/seed {}] n={} m={}",
                family.label(),
                gen_seed,
                graph.num_vertices(),
                graph.num_edges()
            );
            // Reference edge set: any certified run would do; use the
            // deterministic sequential Kruskal output, certified once.
            let reference = kruskal(&graph);
            if let Err(e) = certify_msf(&graph, &reference) {
                failures.push(Failure {
                    family_rank,
                    family,
                    gen_seed,
                    chaos_seed: 0,
                    algo: Algorithm::Kruskal,
                    what: format!("reference Kruskal run failed certification: {e}"),
                });
                continue;
            }
            let reference_keys = reference.canonical_keys();

            for &chaos_seed in &opts.chaos_seeds {
                chaos::set_seed(Some(chaos_seed));
                for &algo in Algorithm::all() {
                    runs += 1;
                    let result = run_algorithm(algo, &graph, 0, &pool);
                    let what = if let Err(e) = certify_msf_par(&graph, &result, &pool) {
                        Some(format!("certification failed: {e}"))
                    } else if result.canonical_keys() != reference_keys {
                        Some(format!(
                            "edge set diverges from reference ({} vs {} edges, \
                             weight {} vs {})",
                            result.edges.len(),
                            reference.edges.len(),
                            result.total_weight,
                            reference.total_weight
                        ))
                    } else {
                        None
                    };
                    if let Some(what) = what {
                        failures.push(Failure {
                            family_rank,
                            family,
                            gen_seed,
                            chaos_seed,
                            algo,
                            what,
                        });
                    }
                }
                chaos::set_seed(None);
            }
        }
    }

    if failures.is_empty() {
        println!(
            "OK: {} runs ({} algorithms x {} famil{} x {} gen seed{} x {} chaos seed{}) \
             all certified and agree",
            runs,
            Algorithm::all().len(),
            opts.families.len(),
            if opts.families.len() == 1 { "y" } else { "ies" },
            opts.gen_seeds.len(),
            if opts.gen_seeds.len() == 1 { "" } else { "s" },
            opts.chaos_seeds.len(),
            if opts.chaos_seeds.len() == 1 { "" } else { "s" },
        );
        return false;
    }

    failures.sort_by_key(|f| (f.family_rank, f.gen_seed, f.chaos_seed));
    let min = &failures[0];
    println!("FAIL: {} of {} runs failed", failures.len(), runs);
    println!(
        "minimal reproducer: --families {} --gen-seeds {} --chaos-seeds {}",
        min.family.label(),
        min.gen_seed,
        min.chaos_seed
    );
    println!("  algorithm: {}", min.algo.label());
    println!("  failure:   {}", min.what);
    if chaos::compiled_in() {
        println!("  rerun with LLP_CHAOS_SEED={} --features chaos", min.chaos_seed);
    }
    true
}

/// The seeded fault-injection matrix: every `(seed, leg)` cell must end
/// in a certified-correct result or a typed classified error — never a
/// wrong answer, never a hang. Returns true on failure (like `sweep`).
fn fault_matrix(opts: &Options) -> bool {
    if !faults::compiled_in() {
        eprintln!(
            "fault-matrix needs fault injection compiled in; rebuild with --features faults \
             (an inert matrix would prove nothing)"
        );
        return true;
    }
    faults::set_seed(None);

    // Watchdog: the never-hang guarantee is enforced, not assumed. Any
    // cell that wedges past the budget turns into a hard exit 4 — CI sees
    // a distinct code instead of a stuck job.
    let done = Arc::new(AtomicBool::new(false));
    {
        let done = Arc::clone(&done);
        let budget = Duration::from_secs(opts.watchdog_secs);
        std::thread::spawn(move || {
            let t0 = Instant::now();
            while t0.elapsed() < budget {
                std::thread::sleep(Duration::from_millis(200));
                if done.load(Ordering::Acquire) {
                    return;
                }
            }
            eprintln!(
                "fault-matrix: watchdog expired after {}s — a leg hung",
                budget.as_secs()
            );
            std::process::exit(4);
        });
    }

    let pool = ThreadPool::new(opts.threads);
    let graph = largest_component(&erdos_renyi(opts.size, opts.size * 4, opts.seed));
    println!(
        "fault matrix over n={} m={} ({} seeds x 4 legs, watchdog {}s)",
        graph.num_vertices(),
        graph.num_edges(),
        opts.fault_seeds.len(),
        opts.watchdog_secs
    );
    let reference = kruskal(&graph);
    certify_msf(&graph, &reference).expect("reference Kruskal run must certify");
    let reference_keys = reference.canonical_keys();

    // Pristine binary image, written with injection off.
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let src = dir.join(format!("llp-fault-matrix-{pid}.bin"));
    let dest = dir.join(format!("llp-fault-matrix-{pid}-copy.bin"));
    let ck = dir.join(format!("llp-fault-matrix-{pid}.ck"));
    {
        let f = std::fs::File::create(&src).expect("temp graph file");
        write_binary(&graph, std::io::BufWriter::new(f)).expect("pristine write");
    }
    // Small shards so every sharded run crosses several checkpoint
    // boundaries — the resume path has real state to pick up.
    let shard_edges = (graph.num_edges() as usize / 4).max(1);

    // One live server for every serve-leg sweep; short deadlines so an
    // injected stall reaps in test time rather than the default 30 s.
    let service = Arc::new(MsfService::build(&graph, &pool).expect("service build"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = {
        let service = Arc::clone(&service);
        let cfg = ServerConfig {
            workers: 2,
            read_timeout: Some(Duration::from_millis(500)),
            write_timeout: Some(Duration::from_millis(500)),
            ..ServerConfig::default()
        };
        std::thread::spawn(move || run_server(listener, service, cfg))
    };

    let mut runs = 0usize;
    let mut clean = 0usize;
    let mut classified = 0usize;
    let mut total_retries = 0u64;
    let mut failures: Vec<String> = Vec::new();

    for &seed in &opts.fault_seeds {
        // Leg 1 — ingest read: the hardened reader either reconstructs
        // the exact graph or returns a typed IoError; a structurally
        // different Ok is a silent corruption escape.
        runs += 1;
        faults::set_seed(Some(seed));
        let read = read_binary_file(&src);
        faults::set_seed(None);
        match read {
            Ok(g) if g == graph => clean += 1,
            Ok(_) => failures.push(format!(
                "seed {seed} ingest-read: injection produced a WRONG graph that decoded cleanly"
            )),
            Err(_) => classified += 1,
        }

        // Leg 2 — ingest write: complete install or nothing. A failed
        // write must not leave anything under the destination name, and
        // an installed file must round-trip to the identical graph.
        runs += 1;
        let _ = std::fs::remove_file(&dest);
        faults::set_seed(Some(seed));
        let wrote = BinaryFileWriter::create(&dest, graph.num_vertices()).and_then(|mut w| {
            for e in graph.edges() {
                w.write_edge(e)?;
            }
            w.finish()
        });
        faults::set_seed(None);
        match wrote {
            Ok(_) => match read_binary_file(&dest) {
                Ok(g) if g == graph => clean += 1,
                Ok(_) => failures.push(format!(
                    "seed {seed} ingest-write: installed file decodes to a DIFFERENT graph"
                )),
                Err(e) => failures.push(format!(
                    "seed {seed} ingest-write: installed file unreadable with faults off: {e}"
                )),
            },
            Err(_) if dest.exists() => failures.push(format!(
                "seed {seed} ingest-write: failed write left a file under the destination name"
            )),
            Err(_) => classified += 1,
        }

        // Leg 3 — checkpointed sharded solve. An injected I/O fault plays
        // the crash; the fsync'd manifest must then resume the aborted
        // run to the identical certified forest with injection off.
        runs += 1;
        let _ = std::fs::remove_file(&ck);
        let cfg = ShardedConfig {
            shard_edges,
            certify: true,
            read_ahead: 1,
            checkpoint: Some(ck.clone()),
            stop_after_shards: None,
        };
        faults::set_seed(Some(seed));
        let sharded = sharded_msf_file(&src, &cfg, &pool);
        faults::set_seed(None);
        match sharded {
            Ok(run) if run.certified && run.result.canonical_keys() == reference_keys => {
                clean += 1
            }
            Ok(_) => failures.push(format!(
                "seed {seed} sharded: forest diverges from the reference under injection"
            )),
            // Corruption in the shard stream is detectable by
            // construction, so injection can only surface as Io; a
            // certifier rejection under injection is a genuinely wrong
            // forest that the fault merely exposed.
            Err(ShardedError::Verify(e)) => failures.push(format!(
                "seed {seed} sharded: WRONG forest (certifier rejection): {e}"
            )),
            Err(ShardedError::Interrupted { .. }) => failures.push(format!(
                "seed {seed} sharded: interrupted without stop_after_shards"
            )),
            Err(ShardedError::Io(_)) => {
                classified += 1;
                runs += 1;
                match sharded_msf_file(&src, &cfg, &pool) {
                    Ok(run) if run.certified
                        && run.result.canonical_keys() == reference_keys =>
                    {
                        clean += 1
                    }
                    Ok(_) => failures.push(format!(
                        "seed {seed} sharded-resume: resumed forest diverges from the reference"
                    )),
                    Err(e) => failures.push(format!(
                        "seed {seed} sharded-resume: clean resume after the injected crash \
                         failed: {e}"
                    )),
                }
            }
        }

        // Leg 4 — live server under socket faults: the retrying load
        // generator verifies EVERY response against the local certified
        // index. Divergence is a wrong answer; an exhausted retry budget
        // is a classified (loud) failure, not a correctness escape.
        runs += 1;
        faults::set_seed(Some(seed));
        let lg = LoadgenConfig {
            batches: vec![4, 64],
            queries_per_point: 200,
            seed,
        };
        let sweep = run_sweep(&addr, service.n as u32, &lg, Some(service.as_ref()));
        faults::set_seed(None);
        match sweep {
            Ok(points) => {
                total_retries += points.iter().map(|p| p.retries).sum::<u64>();
                clean += 1;
            }
            Err(e) if e.contains("diverges") => {
                failures.push(format!("seed {seed} serve: WRONG answer: {e}"))
            }
            Err(_) => classified += 1,
        }
    }

    // Injection is off: the shutdown frame cannot be eaten by a fault.
    let mut conn = TcpStream::connect(&addr).expect("shutdown connect");
    let mut payload = Vec::new();
    encode_queries(&[Query::Shutdown], &mut payload);
    write_frame(&mut conn, &payload).expect("shutdown frame");
    server.join().expect("server thread").expect("server run");

    for p in [&src, &dest, &ck] {
        let _ = std::fs::remove_file(p);
    }
    done.store(true, Ordering::Release);

    if failures.is_empty() {
        println!(
            "OK: fault matrix {} seeds x 4 legs -> {runs} runs, {clean} certified-clean, \
             {classified} classified errors, {total_retries} retries absorbed, 0 wrong answers",
            opts.fault_seeds.len()
        );
        return false;
    }
    println!("FAIL: {} of {runs} fault-matrix runs failed", failures.len());
    for f in &failures {
        println!("  {f}");
    }
    println!("rerun a cell with LLP_FAULT_SEED=<seed> --features faults");
    true
}

fn perf(opts: &Options) -> bool {
    if cfg!(debug_assertions) {
        eprintln!("warning: perf mode in a debug build; timings are not meaningful");
    }
    // The scale test pairs the certifier with the construction it rides
    // along with in the harness: a parallel Borůvka run on a Graph500
    // RMAT graph. Scale 21 keeps the giant component above 1M vertices.
    println!("building scale-21 Graph500 RMAT graph (giant component)...");
    let graph = largest_component(&rmat(RmatParams::graph500(21, 8, opts.seed)));
    let n = graph.num_vertices();
    let m = graph.num_edges();
    println!("graph: n={n} m={m}");
    assert!(n >= 1_000_000, "scale-21 RMAT giant component must be >= 1M vertices");

    let pool = ThreadPool::new(opts.threads);
    let t0 = Instant::now();
    let msf = run_algorithm(Algorithm::Boruvka, &graph, 0, &pool);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "MST construction (parallel Borůvka, {} threads): {build_ms:.1} ms",
        opts.threads
    );

    let t1 = Instant::now();
    certify_msf(&graph, &msf).expect("Borůvka output must certify");
    let seq_ms = t1.elapsed().as_secs_f64() * 1e3;
    println!(
        "certify_msf (sequential):  {seq_ms:8.1} ms ({:.1}% of construction)",
        100.0 * seq_ms / build_ms
    );

    let was = llp_runtime::telemetry::enabled();
    llp_runtime::telemetry::set_enabled(true);
    llp_runtime::telemetry::begin_run();
    let t2 = Instant::now();
    certify_msf_par(&graph, &msf, &pool).expect("Borůvka output must certify");
    let par_ms = t2.elapsed().as_secs_f64() * 1e3;
    let report = llp_runtime::telemetry::take_report();
    llp_runtime::telemetry::set_enabled(was);
    for p in &report.phases {
        println!("  phase {:<20} {:>9.1} ms", p.name, p.total_ns as f64 / 1e6);
    }
    println!(
        "certify_msf_par ({} threads): {par_ms:6.1} ms ({:.1}% of construction)",
        opts.threads,
        100.0 * par_ms / build_ms
    );

    let ratio = seq_ms.min(par_ms) / build_ms;
    // Threshold history: 10% when construction (pre-flat-engine parallel
    // Borůvka) took ~20 s on this workload; the flat-memory engine roughly
    // halved the denominator while the certifier's absolute cost is
    // unchanged (~1.3 s), so the ride-along criterion is now 20% — still
    // "an order of magnitude cheaper than the run it certifies" territory.
    let cert_ok = ratio < 0.20;
    if cert_ok {
        println!("OK: certification under 20% of construction time, no oracle");
    } else {
        println!(
            "FAIL: certification took {:.1}% of construction time (>= 20%)",
            100.0 * ratio
        );
    }

    // Kruskal-family gate: the parallel filter must make filter_kruskal_par
    // strictly cheaper than sort-everything kruskal_par_sort on the same
    // graph — the filter discards most of the m >> n heavy edges unsorted.
    println!();
    println!("Kruskal family on the same graph ({} threads):", opts.threads);
    let t3 = Instant::now();
    let kps = kruskal_par_sort(&graph, &pool);
    let kps_ms = t3.elapsed().as_secs_f64() * 1e3;
    certify_msf_par(&graph, &kps, &pool).expect("kruskal_par_sort output must certify");
    let t4 = Instant::now();
    let fk = filter_kruskal_par(&graph, &pool);
    let fk_ms = t4.elapsed().as_secs_f64() * 1e3;
    certify_msf_par(&graph, &fk, &pool).expect("filter_kruskal_par output must certify");
    assert_eq!(
        fk.canonical_keys(),
        kps.canonical_keys(),
        "Kruskal-family outputs must agree"
    );
    println!("  kruskal_par_sort:   {kps_ms:9.1} ms (certified)");
    println!(
        "  filter_kruskal_par: {fk_ms:9.1} ms (certified, {:.2}x vs kruskal_par_sort)",
        kps_ms / fk_ms
    );
    let fk_ok = if opts.threads >= 8 {
        if fk_ms < kps_ms {
            println!(
                "OK: filter_kruskal_par beats kruskal_par_sort at {} threads",
                opts.threads
            );
            true
        } else {
            println!(
                "FAIL: filter_kruskal_par ({fk_ms:.1} ms) not faster than \
                 kruskal_par_sort ({kps_ms:.1} ms) at {} threads",
                opts.threads
            );
            false
        }
    } else {
        println!("note: the Kruskal-family gate is enforced at >= 8 threads (informational here)");
        true
    };

    // Flat-memory engine gate: LLP-Boruvka with packed MWE words and
    // zero-allocation rounds against the recorded pre-engine baseline.
    println!();
    println!("LLP-Boruvka flat-memory engine ({} threads):", opts.threads);
    let mut best_ms = f64::INFINITY;
    let mut llp_keys = None;
    for run in 0..3 {
        let t = Instant::now();
        let r = run_algorithm(Algorithm::LlpBoruvka, &graph, 0, &pool);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        certify_msf_par(&graph, &r, &pool).expect("LLP-Boruvka output must certify");
        println!("  run {run}: {ms:9.1} ms (certified)");
        best_ms = best_ms.min(ms);
        llp_keys = Some(r.canonical_keys());
    }
    // One extra run under a chaos seed — untimed, but it must certify and
    // return the identical canonical forest (inert without the feature).
    if !chaos::compiled_in() {
        println!("  note: chaos feature not compiled in — the chaos-seeded run is inert");
    }
    chaos::set_seed(Some(7));
    let chaos_run = run_algorithm(Algorithm::LlpBoruvka, &graph, 0, &pool);
    chaos::set_seed(None);
    certify_msf_par(&graph, &chaos_run, &pool).expect("chaos-seeded LLP-Boruvka must certify");
    assert_eq!(
        chaos_run.canonical_keys(),
        llp_keys.expect("three timed runs happened"),
        "chaos-seeded run must return the identical canonical forest"
    );
    println!("  chaos-seeded run: certified, canonical forest identical");
    let speedup = opts.llp_baseline_ms / best_ms;
    println!(
        "  best of 3: {best_ms:.1} ms — {speedup:.2}x vs pre-engine baseline \
         ({:.1} ms)",
        opts.llp_baseline_ms
    );
    let llp_ok = if opts.threads >= 8 {
        if speedup >= 1.25 {
            println!("OK: flat-memory engine beats the recorded baseline by >= 1.25x");
            true
        } else {
            println!(
                "FAIL: speedup {speedup:.2}x < 1.25x over the recorded baseline \
                 ({:.1} ms); re-baseline with --llp-baseline-ms if the hardware changed",
                opts.llp_baseline_ms
            );
            false
        }
    } else {
        println!("note: the engine gate is enforced at >= 8 threads (informational here)");
        true
    };

    // SpMV-backend gate: the algebraic formulation of the same round
    // (min-plus SpMV argmin + SpGEMM contraction) against the direct
    // parallel Borůvka it reformulates. The matrix backend rebuilds an
    // explicit contracted CSR every round, so it is expected to trail —
    // the gate pins it to the same performance class (within 3x), not to
    // parity.
    println!();
    println!("SpMV-Boruvka backend ({} threads):", opts.threads);
    let mut spmv_best_ms = f64::INFINITY;
    let mut spmv_keys = None;
    for run in 0..3 {
        let t = Instant::now();
        let r = run_algorithm(Algorithm::SpmvBoruvka, &graph, 0, &pool);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        certify_msf_par(&graph, &r, &pool).expect("SpMV-Boruvka output must certify");
        println!("  run {run}: {ms:9.1} ms (certified)");
        spmv_best_ms = spmv_best_ms.min(ms);
        spmv_keys = Some(r.canonical_keys());
    }
    let spmv_keys = spmv_keys.expect("three timed runs happened");
    assert_eq!(
        spmv_keys,
        msf.canonical_keys(),
        "SpMV-Boruvka must return the identical canonical forest"
    );
    // Chaos-seeded run, mirroring the engine gate: untimed, must certify
    // and reproduce the identical canonical forest.
    chaos::set_seed(Some(7));
    let chaos_run = run_algorithm(Algorithm::SpmvBoruvka, &graph, 0, &pool);
    chaos::set_seed(None);
    certify_msf_par(&graph, &chaos_run, &pool).expect("chaos-seeded SpMV-Boruvka must certify");
    assert_eq!(
        chaos_run.canonical_keys(),
        spmv_keys,
        "chaos-seeded SpMV run must return the identical canonical forest"
    );
    println!("  chaos-seeded run: certified, canonical forest identical");
    let spmv_ratio = spmv_best_ms / build_ms;
    println!(
        "  best of 3: {spmv_best_ms:.1} ms — {spmv_ratio:.2}x vs parallel Boruvka \
         ({build_ms:.1} ms)"
    );
    let spmv_ok = if opts.threads >= 8 {
        if spmv_ratio <= 3.0 {
            println!("OK: SpMV backend within 3x of direct parallel Boruvka");
            true
        } else {
            println!(
                "FAIL: SpMV backend at {spmv_ratio:.2}x of parallel Boruvka (> 3x) \
                 — the matrix formulation fell out of the performance class"
            );
            false
        }
    } else {
        println!("note: the SpMV gate is enforced at >= 8 threads (informational here)");
        true
    };

    !(cert_ok && fk_ok && llp_ok && spmv_ok)
}

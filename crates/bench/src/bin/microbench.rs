//! `microbench` — targeted kernels behind the flat-memory contraction
//! engine, runnable standalone (CI smoke: `--quick`).
//!
//! ```text
//! microbench [--quick] [--threads N]
//! ```
//!
//! Groups:
//!
//! * `scratch-arena` — leasing a warm buffer from a [`ScratchArena`]
//!   versus allocating a fresh `Vec` per round (the allocation the arena
//!   removes from every contraction round).
//! * `mwe-word` — the packed single-`u64` MWE propose versus the retired
//!   two-word `AtomicIndexMin` protocol on an identical proposal stream.
//! * `relabel-prim` — the Prim family before/after the cache-aware
//!   relabelings in `llp_graph::transform` (degree-descending on a
//!   hub-heavy RMAT component, BFS order on a road mesh).
//! * `contraction-round` — end-to-end LLP-Boruvka and parallel Boruvka on
//!   the flat-memory engine.
//! * `spmv-round` — the algebraic SpMV-Boruvka backend (min-plus row
//!   argmin + SpGEMM contraction) against direct LLP-Boruvka on the same
//!   graph: what the explicit contracted-CSR rebuild costs per round.
//!
//! `--quick` shrinks inputs and sample counts to a few seconds for CI;
//! without it the groups run at benchmark sizes. `LLP_BENCH_SAMPLES`
//! overrides every group's sample count either way.

use llp_bench::microbench::{black_box, BenchmarkId, Criterion};
use llp_graph::algo::largest_component;
use llp_graph::generators::{erdos_renyi, rmat, road_network, RmatParams, RoadParams};
use llp_graph::transform::{
    permute_vertices, random_permutation, relabel_bfs, relabel_degree_descending,
};
use llp_graph::CsrGraph;
use llp_mst::prelude::{boruvka_par, llp_boruvka, prim_indexed, spmv_boruvka_par};
use llp_runtime::atomics::{mwe_propose, weight_hi32, AtomicIndexMin, MWE_EMPTY};
use llp_runtime::rng::SmallRng;
use llp_runtime::{atomics, parallel_for, ParallelForConfig, ScratchArena, ThreadPool};
use std::sync::atomic::Ordering;

struct Opts {
    quick: bool,
    threads: usize,
}

fn main() {
    let mut opts = Opts {
        quick: false,
        threads: 4,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => opts.quick = true,
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs an integer");
                        std::process::exit(2);
                    })
            }
            other => {
                eprintln!("unknown option {other}; usage: microbench [--quick] [--threads N]");
                std::process::exit(2);
            }
        }
    }
    if cfg!(debug_assertions) {
        eprintln!("warning: debug build; run with --release for meaningful numbers");
    }

    let mut c = Criterion::default();
    scratch_arena(&mut c, &opts);
    mwe_word(&mut c, &opts);
    relabel_prim(&mut c, &opts);
    contraction_round(&mut c, &opts);
    spmv_round(&mut c, &opts);
}

fn samples(opts: &Opts, full: usize) -> usize {
    if opts.quick {
        3
    } else {
        full
    }
}

/// Warm lease vs fresh allocation, at a contraction-round buffer size.
fn scratch_arena(c: &mut Criterion, opts: &Opts) {
    let n: usize = if opts.quick { 1 << 16 } else { 1 << 22 };
    let pool = ThreadPool::new(opts.threads);
    let cfg = ParallelForConfig::default();
    let mut g = c.benchmark_group("scratch-arena");
    g.sample_size(samples(opts, 20));

    g.bench_with_input(BenchmarkId::new("fresh-vec", n), &n, |b, &n| {
        b.iter(|| {
            let v = vec![MWE_EMPTY; n];
            black_box(v.len())
        })
    });
    let arena = ScratchArena::new();
    // Warm the shelf once so the loop measures steady-state reuse.
    drop(arena.lease_filled::<u64>(&pool, cfg, n, MWE_EMPTY));
    g.bench_with_input(BenchmarkId::new("warm-lease", n), &n, |b, &n| {
        b.iter(|| {
            let v = arena.lease_filled::<u64>(&pool, cfg, n, MWE_EMPTY);
            black_box(v.len())
        })
    });
    g.finish();
}

/// Packed one-word propose vs the retired two-word protocol, identical
/// proposal stream (n cells, 8n proposals, 25% duplicate weights so both
/// protocols hit their tie paths).
fn mwe_word(c: &mut Criterion, opts: &Opts) {
    let n: usize = if opts.quick { 1 << 12 } else { 1 << 16 };
    let m = 8 * n;
    let mut rng = SmallRng::seed_from_u64(9);
    let weights: Vec<f64> = (0..m)
        .map(|_| {
            if rng.gen_range(0..4) == 0 {
                0.5
            } else {
                rng.gen::<f64>()
            }
        })
        .collect();
    let whis: Vec<u32> = weights.iter().map(|&w| weight_hi32(w)).collect();
    let cells: Vec<usize> = (0..m).map(|_| rng.gen_range(0..n as u32) as usize).collect();
    let keys: Vec<(u64, u32)> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| (atomics::f64_to_ordered(w), i as u32))
        .collect();
    let pool = ThreadPool::new(opts.threads);
    let cfg = ParallelForConfig::default();

    let mut g = c.benchmark_group("mwe-word");
    g.sample_size(samples(opts, 20));

    let mut packed = vec![MWE_EMPTY; n];
    g.bench_function("packed-u64", |b| {
        b.iter(|| {
            let cells_ref = &cells;
            let whis_ref = &whis;
            let keys_ref = &keys;
            let slots = atomics::as_atomic_u64(&mut packed);
            parallel_for(&pool, 0..m, cfg, |i| {
                mwe_propose(&slots[cells_ref[i]], whis_ref[i], i as u32, |idx| {
                    keys_ref[idx as usize]
                });
            });
            for s in slots {
                s.store(MWE_EMPTY, Ordering::Relaxed);
            }
        })
    });

    let two_word: Vec<AtomicIndexMin> = (0..n).map(|_| AtomicIndexMin::new()).collect();
    g.bench_function("two-word", |b| {
        b.iter(|| {
            let cells_ref = &cells;
            let keys_ref = &keys;
            let slots = &two_word;
            parallel_for(&pool, 0..m, cfg, |i| {
                slots[cells_ref[i]].propose_min_by(i as u64, |idx| keys_ref[idx as usize]);
            });
            for s in slots {
                s.reset();
            }
        })
    });
    g.finish();
}

/// Prim (indexed heap) before/after the cache-aware relabelings. The
/// `shuffled` row is the realistic starting point — inputs arrive in
/// arbitrary vertex order (our generators happen to emit near-optimal
/// orders already: row-major grids, BFS-ish RMAT components) — and the
/// relabelings are applied to that shuffled graph to show what they
/// recover.
fn relabel_prim(c: &mut Criterion, opts: &Opts) {
    let (rmat_g, road_g): (CsrGraph, CsrGraph) = if opts.quick {
        (
            largest_component(&rmat(RmatParams::graph500(13, 8, 5))),
            road_network(RoadParams::usa_like(60, 60, 5)),
        )
    } else {
        (
            largest_component(&rmat(RmatParams::graph500(17, 8, 5))),
            road_network(RoadParams::usa_like(400, 400, 5)),
        )
    };
    let mut g = c.benchmark_group("relabel-prim");
    g.sample_size(samples(opts, 10));

    for (name, graph) in [("rmat", &rmat_g), ("road", &road_g)] {
        let n = graph.num_vertices();
        let shuffled = permute_vertices(graph, &random_permutation(n, 99));
        let (deg_g, _) = relabel_degree_descending(&shuffled);
        let (bfs_g, _) = relabel_bfs(&shuffled);
        let param = format!("{name}/n={n}");
        g.bench_with_input(BenchmarkId::new("generator-order", &param), graph, |b, gr| {
            b.iter(|| black_box(prim_indexed(gr, 0).expect("connected").total_weight))
        });
        g.bench_with_input(BenchmarkId::new("shuffled", &param), &shuffled, |b, gr| {
            b.iter(|| black_box(prim_indexed(gr, 0).expect("connected").total_weight))
        });
        g.bench_with_input(BenchmarkId::new("degree-desc", &param), &deg_g, |b, gr| {
            b.iter(|| black_box(prim_indexed(gr, 0).expect("connected").total_weight))
        });
        g.bench_with_input(BenchmarkId::new("bfs-order", &param), &bfs_g, |b, gr| {
            b.iter(|| black_box(prim_indexed(gr, 0).expect("connected").total_weight))
        });
    }
    g.finish();
}

/// End-to-end rounds on the flat-memory engine.
fn contraction_round(c: &mut Criterion, opts: &Opts) {
    let graph = if opts.quick {
        largest_component(&erdos_renyi(20_000, 120_000, 11))
    } else {
        largest_component(&rmat(RmatParams::graph500(18, 8, 11)))
    };
    let pool = ThreadPool::new(opts.threads);
    let mut g = c.benchmark_group("contraction-round");
    g.sample_size(samples(opts, 10));
    let param = format!("n={} m={}", graph.num_vertices(), graph.num_edges());

    g.bench_with_input(BenchmarkId::new("llp-boruvka", &param), &graph, |b, gr| {
        b.iter(|| black_box(llp_boruvka(gr, &pool).total_weight))
    });
    g.bench_with_input(BenchmarkId::new("boruvka-par", &param), &graph, |b, gr| {
        b.iter(|| black_box(boruvka_par(gr, &pool).total_weight))
    });
    g.finish();
}

/// The SpMV formulation of the same round against direct LLP-Boruvka:
/// both pick the identical MWEs, but the SpMV backend rebuilds an explicit
/// contracted CSR (SpGEMM-style row/col merge) where the direct engine
/// relabels in place — this group prices that difference.
fn spmv_round(c: &mut Criterion, opts: &Opts) {
    let graph = if opts.quick {
        largest_component(&erdos_renyi(20_000, 120_000, 11))
    } else {
        largest_component(&rmat(RmatParams::graph500(18, 8, 11)))
    };
    let pool = ThreadPool::new(opts.threads);
    let mut g = c.benchmark_group("spmv-round");
    g.sample_size(samples(opts, 10));
    let param = format!("n={} m={}", graph.num_vertices(), graph.num_edges());

    g.bench_with_input(BenchmarkId::new("spmv-boruvka", &param), &graph, |b, gr| {
        b.iter(|| black_box(spmv_boruvka_par(gr, &pool).total_weight))
    });
    g.bench_with_input(BenchmarkId::new("llp-boruvka", &param), &graph, |b, gr| {
        b.iter(|| black_box(llp_boruvka(gr, &pool).total_weight))
    });
    g.finish();
}

//! `dynamic-bench` — update throughput of the fully dynamic MSF
//! (`llp_mst::dynamic::DynamicMsf`): edges/sec applied across mixed
//! insert/delete epochs, with per-epoch latency percentiles, written as
//! `llp-mst-dynamic-report/v1` JSON and gated on `--min-eps`.
//!
//! ```text
//! dynamic-bench [--scale 14] [--ef 8] [--seed 1] [--epochs 24]
//!               [--batch 1024] [--threads N] [--no-certify]
//!               [--report BENCH_dynamic.json] [--min-eps 0]
//! ```
//!
//! Each epoch deletes `batch/2` random live edges (tree edges included,
//! so the scoped contraction re-run triggers) and inserts `batch/2`
//! edges — half re-insertions of previously deleted edges, half fresh
//! random pairs — then applies the batch as one [`DynamicMsf`] epoch.
//! Unless `--no-certify`, every epoch ends with the full certification
//! sweep, so the reported throughput is *certified* update throughput:
//! the number a serving deployment would actually sustain.

use llp_graph::generators::{rmat, RmatParams};
use llp_graph::Edge;
use llp_mst::dynamic::DynamicMsf;
use llp_runtime::rng::SmallRng;
use llp_runtime::ThreadPool;
use std::io::Write;
use std::time::Instant;

struct Opts {
    scale: u32,
    ef: usize,
    seed: u64,
    epochs: usize,
    batch: usize,
    threads: usize,
    certify: bool,
    report: String,
    min_eps: f64,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        scale: 14,
        ef: 8,
        seed: 1,
        epochs: 24,
        batch: 1024,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        certify: true,
        report: "BENCH_dynamic.json".into(),
        min_eps: 0.0,
    };
    let mut args = std::env::args().skip(1);
    fn value<T: std::str::FromStr>(flag: &str, args: &mut impl Iterator<Item = String>) -> T {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    }
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => opts.scale = value("--scale", &mut args),
            "--ef" => opts.ef = value("--ef", &mut args),
            "--seed" => opts.seed = value("--seed", &mut args),
            "--epochs" => opts.epochs = value("--epochs", &mut args),
            "--batch" => opts.batch = value("--batch", &mut args),
            "--threads" => opts.threads = value("--threads", &mut args),
            "--no-certify" => opts.certify = false,
            "--report" => opts.report = value("--report", &mut args),
            "--min-eps" => opts.min_eps = value("--min-eps", &mut args),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    if opts.epochs == 0 || opts.batch < 2 {
        eprintln!("--epochs must be >= 1 and --batch >= 2");
        std::process::exit(2);
    }
    opts
}

struct EpochRow {
    epoch: u64,
    updates: usize,
    ms: f64,
    eps: f64,
    fast_swaps: usize,
    fast_rejects: usize,
    links: usize,
    dirty: usize,
}

/// Percentile over a sorted slice (nearest-rank on the closed range).
fn percentile(sorted: &[f64], p: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

fn main() {
    let opts = parse_opts();
    if cfg!(debug_assertions) {
        eprintln!("warning: debug build; run with --release for meaningful numbers");
    }

    let graph = rmat(RmatParams::graph500(opts.scale, opts.ef, opts.seed));
    let n = graph.num_vertices();
    let pool = ThreadPool::new(opts.threads);
    println!(
        "graph: rmat scale {} ef {} seed {} (n={n}, m={})",
        opts.scale,
        opts.ef,
        opts.seed,
        graph.num_edges()
    );

    let t = Instant::now();
    let mut d = DynamicMsf::new(&graph, &pool).unwrap_or_else(|e| {
        eprintln!("initial build failed: {e}");
        std::process::exit(1);
    });
    d.set_certify_epochs(opts.certify);
    let m0 = d.num_edges();
    println!(
        "initial epoch: {:.1} ms (m={m0}, trees={}, certified)",
        t.elapsed().as_secs_f64() * 1e3,
        d.msf().num_trees
    );

    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x9e3779b97f4a7c15);
    let mut live: Vec<(u32, u32)> = d
        .current_edges()
        .iter()
        .map(Edge::canonical_endpoints)
        .collect();
    let mut graveyard: Vec<Edge> = Vec::new();
    let mut rows: Vec<EpochRow> = Vec::with_capacity(opts.epochs);
    let (mut classify_ms, mut rebuild_ms, mut index_ms, mut certify_ms) = (0.0, 0.0, 0.0, 0.0);
    let (mut tot_ins, mut tot_del) = (0usize, 0usize);

    for _ in 0..opts.epochs {
        let half = opts.batch / 2;
        let mut deletes: Vec<(u32, u32)> = Vec::with_capacity(half);
        for _ in 0..half.min(live.len().saturating_sub(1)) {
            let i = rng.gen_range(0usize..live.len());
            let (u, v) = live.swap_remove(i);
            deletes.push((u, v));
            graveyard.push(Edge::new(u, v, 0.0));
        }
        let mut inserts: Vec<Edge> = Vec::with_capacity(half);
        for k in 0..half {
            if k % 2 == 0 && !graveyard.is_empty() {
                let i = rng.gen_range(0usize..graveyard.len());
                let e = graveyard.swap_remove(i);
                inserts.push(Edge::new(e.u, e.v, rng.gen_range(1u32..1000) as f64));
            } else {
                let u = rng.gen_range(0u32..n as u32);
                let v = rng.gen_range(0u32..n as u32);
                if u != v {
                    inserts.push(Edge::new(u, v, rng.gen_range(1u32..1000) as f64));
                }
            }
        }

        let t = Instant::now();
        let report = d.apply_batch(&inserts, &deletes, &pool).unwrap_or_else(|e| {
            eprintln!("epoch failed: {e}");
            std::process::exit(1);
        });
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let updates = report.updates();
        rows.push(EpochRow {
            epoch: report.epoch,
            updates,
            ms,
            eps: updates as f64 / (ms / 1e3),
            fast_swaps: report.fast_swaps,
            fast_rejects: report.fast_rejects,
            links: report.links,
            dirty: report.dirty_components,
        });
        classify_ms += report.classify_ms;
        rebuild_ms += report.rebuild_ms;
        index_ms += report.index_ms;
        certify_ms += report.certify_ms;
        tot_ins += report.inserts_applied;
        tot_del += report.deletes_applied;

        // Refresh the live list from the structure (cheap vs an epoch).
        live.clear();
        live.extend(d.current_edges().iter().map(Edge::canonical_endpoints));
    }

    let mut eps_sorted: Vec<f64> = rows.iter().map(|r| r.eps).collect();
    eps_sorted.sort_by(f64::total_cmp);
    let mut ms_sorted: Vec<f64> = rows.iter().map(|r| r.ms).collect();
    ms_sorted.sort_by(f64::total_cmp);
    // Throughput percentiles quote the *slow* tail: p99 is the 1st
    // percentile of eps (the worst epochs), mirroring latency p99.
    let eps_p50 = percentile(&eps_sorted, 50);
    let eps_p99 = percentile(&eps_sorted, 1);
    let ms_p50 = percentile(&ms_sorted, 50);
    let ms_p99 = percentile(&ms_sorted, 99);

    println!("epoch  updates      ms        eps  swaps rejects links dirty");
    for r in &rows {
        println!(
            "{:>5} {:>8} {:>7.2} {:>10.0} {:>6} {:>7} {:>5} {:>5}",
            r.epoch, r.updates, r.ms, r.eps, r.fast_swaps, r.fast_rejects, r.links, r.dirty
        );
    }
    println!(
        "eps: p50 {eps_p50:.0} p99 {eps_p99:.0} | epoch ms: p50 {ms_p50:.2} p99 {ms_p99:.2} \
         | certified: {}",
        opts.certify
    );

    write_report(&opts, n, m0, &rows, eps_p50, eps_p99, ms_p50, ms_p99, [
        classify_ms,
        rebuild_ms,
        index_ms,
        certify_ms,
    ], tot_ins, tot_del)
    .unwrap_or_else(|e| {
        eprintln!("{}: {e}", opts.report);
        std::process::exit(1);
    });
    println!("report: {}", opts.report);

    if eps_p50 < opts.min_eps {
        eprintln!(
            "gate FAILED: p50 throughput {eps_p50:.0} updates/s is below --min-eps {:.0}",
            opts.min_eps
        );
        std::process::exit(1);
    }
    if opts.min_eps > 0.0 {
        println!("gate: p50 {eps_p50:.0} updates/s >= {:.0}", opts.min_eps);
    }
}

#[allow(clippy::too_many_arguments)]
fn write_report(
    opts: &Opts,
    n: usize,
    m0: usize,
    rows: &[EpochRow],
    eps_p50: f64,
    eps_p99: f64,
    ms_p50: f64,
    ms_p99: f64,
    phase_ms: [f64; 4],
    tot_ins: usize,
    tot_del: usize,
) -> std::io::Result<()> {
    let path = std::path::Path::new(&opts.report);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{\"schema\":\"llp-mst-dynamic-report/v1\",")?;
    writeln!(f, "\"graph\":{{\"n\":{n},\"m0\":{m0}}},")?;
    writeln!(
        f,
        "\"config\":{{\"scale\":{},\"ef\":{},\"seed\":{},\"epochs\":{},\"batch\":{},\
         \"threads\":{},\"certified\":{}}},",
        opts.scale, opts.ef, opts.seed, opts.epochs, opts.batch, opts.threads, opts.certify
    )?;
    writeln!(f, "\"eps\":{{\"p50\":{eps_p50:.1},\"p99\":{eps_p99:.1}}},")?;
    writeln!(f, "\"epoch_ms\":{{\"p50\":{ms_p50:.3},\"p99\":{ms_p99:.3}}},")?;
    writeln!(
        f,
        "\"phase_ms_total\":{{\"classify\":{:.3},\"rebuild\":{:.3},\"index\":{:.3},\
         \"certify\":{:.3}}},",
        phase_ms[0], phase_ms[1], phase_ms[2], phase_ms[3]
    )?;
    writeln!(
        f,
        "\"totals\":{{\"inserts_applied\":{tot_ins},\"deletes_applied\":{tot_del}}},"
    )?;
    writeln!(f, "\"epochs\":[")?;
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "{{\"epoch\":{},\"updates\":{},\"ms\":{:.3},\"eps\":{:.1},\"fast_swaps\":{},\
             \"fast_rejects\":{},\"links\":{},\"dirty_components\":{}}}{}",
            r.epoch, r.updates, r.ms, r.eps, r.fast_swaps, r.fast_rejects, r.links, r.dirty, sep
        )?;
    }
    writeln!(f, "]}}")?;
    Ok(())
}

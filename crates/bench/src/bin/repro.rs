//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <table1|fig2|fig3|fig4|ablation|sizes|all> [options]
//!
//! options:
//!   --scale small|medium|large   workload size preset (default: medium)
//!   --reps N                     timed repetitions per config (default: 3)
//!   --max-threads N              top of the thread sweep (default: 8)
//!   --seed N                     generator seed (default: 42)
//!   --out DIR                    CSV output directory (default: results)
//!   --dimacs FILE.gr             use a real DIMACS road graph for the
//!                                road workload (e.g. USA-road-d.USA.gr)
//! ```
//!
//! Output: paper-style text tables on stdout plus, per artifact in the
//! output directory, one CSV of timing/work metrics and one structured
//! JSON run report (schema `llp-mst-run-report/v1`) carrying per-phase
//! timings, per-wave histograms and telemetry counters for every
//! (algorithm, workload, threads) configuration.

use llp_bench::harness::{
    format_table, time_algorithm_with_report, write_csv, write_json_report, RunRecord, Sample,
};
use llp_bench::{Algorithm, Scale, Workload};
use std::path::PathBuf;

/// Peels the timing samples out of telemetry-bearing records for CSV output.
fn samples_of(records: &[RunRecord]) -> Vec<Sample> {
    records.iter().map(|r| r.sample.clone()).collect()
}

struct Options {
    scale: Scale,
    reps: usize,
    max_threads: usize,
    seed: u64,
    out: PathBuf,
    dimacs: Option<PathBuf>,
}

impl Options {
    fn road_workload(&self) -> Workload {
        if let Some(path) = &self.dimacs {
            let file = std::fs::File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open {}: {e}", path.display());
                std::process::exit(2);
            });
            Workload::from_dimacs(
                &path.file_stem().unwrap().to_string_lossy(),
                std::io::BufReader::new(file),
            )
            .unwrap_or_else(|e| {
                eprintln!("cannot parse {}: {e}", path.display());
                std::process::exit(2);
            })
        } else {
            Workload::road(self.scale, self.seed)
        }
    }

    fn thread_sweep(&self) -> Vec<usize> {
        let mut t = 1;
        let mut sweep = Vec::new();
        while t <= self.max_threads {
            sweep.push(t);
            t *= 2;
        }
        sweep
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: repro <table1|fig2|fig3|fig4|ablation|sizes|all> [options]");
        std::process::exit(2);
    };

    let mut opts = Options {
        scale: Scale::Medium,
        reps: 3,
        max_threads: 8,
        seed: 42,
        out: PathBuf::from("results"),
        dimacs: None,
    };
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => {
                let v = value("--scale");
                opts.scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}'");
                    std::process::exit(2);
                });
            }
            "--reps" => opts.reps = value("--reps").parse().expect("--reps N"),
            "--max-threads" => {
                opts.max_threads = value("--max-threads").parse().expect("--max-threads N")
            }
            "--seed" => opts.seed = value("--seed").parse().expect("--seed N"),
            "--out" => opts.out = PathBuf::from(value("--out")),
            "--dimacs" => opts.dimacs = Some(PathBuf::from(value("--dimacs"))),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    match command.as_str() {
        "table1" => table1(&opts),
        "fig2" => fig2(&opts),
        "fig3" => fig3(&opts),
        "fig4" => fig4(&opts),
        "ablation" => ablation(&opts),
        "sizes" => sizes(&opts),
        "all" => {
            table1(&opts);
            fig2(&opts);
            fig3(&opts);
            fig4(&opts);
            ablation(&opts);
            sizes(&opts);
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}

/// Table I: dataset summary.
fn table1(opts: &Options) {
    let workloads = [opts.road_workload(), Workload::rmat(opts.scale, opts.seed)];
    let rows: Vec<Vec<String>> = workloads
        .iter()
        .map(|w| {
            let s = llp_graph::algo::degree_stats(&w.graph);
            vec![
                w.name.clone(),
                w.kind.to_string(),
                s.n.to_string(),
                s.m.to_string(),
                format!("{:.2}", s.avg),
                s.max.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Table I: graphs used in experimental evaluation",
            &["Name used", "Type", "Vertices", "Edges", "AvgDeg", "MaxDeg"],
            &rows,
        )
    );
}

/// Fig. 2: single-threaded Prim vs LLP-Prim (1T) vs Boruvka, road + rmat.
fn fig2(opts: &Options) {
    let workloads = [opts.road_workload(), Workload::rmat(opts.scale, opts.seed)];
    let algos = [
        Algorithm::Prim,
        Algorithm::LlpPrimSeq,
        Algorithm::Boruvka, // parallel Boruvka run with 1 thread, as in the paper
    ];
    let mut records: Vec<RunRecord> = Vec::new();
    let mut rows = Vec::new();
    for w in &workloads {
        let base = records.len();
        for &algo in &algos {
            records.push(time_algorithm_with_report(algo, w, 1, opts.reps));
        }
        let prim_ms = records[base].sample.median_ms;
        for r in &records[base..] {
            let s = &r.sample;
            rows.push(vec![
                s.workload.clone(),
                s.algo.label().to_string(),
                format!("{:.2}", s.median_ms),
                format!("{:.2}x", prim_ms / s.median_ms),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            "Fig. 2: single-threaded runtimes (speedup relative to Prim)",
            &["Workload", "Algorithm", "Median ms", "vs Prim"],
            &rows,
        )
    );
    let _ = write_csv(&opts.out.join("fig2.csv"), &samples_of(&records));
    let _ = write_json_report(&opts.out.join("fig2.json"), &records);
    println!(
        "paper shape: LLP-Prim(1T) ≈ 1.21–1.27x faster than Prim; both ≈ 3x faster than Boruvka\n"
    );
}

/// Fig. 3: thread sweep on the road network.
fn fig3(opts: &Options) {
    let w = opts.road_workload();
    let algos = [Algorithm::LlpPrim, Algorithm::Boruvka, Algorithm::LlpBoruvka];
    let mut records: Vec<RunRecord> = Vec::new();
    let mut rows = Vec::new();
    for threads in opts.thread_sweep() {
        for &algo in &algos {
            let r = time_algorithm_with_report(algo, &w, threads, opts.reps);
            let s = &r.sample;
            rows.push(vec![
                threads.to_string(),
                s.algo.label().to_string(),
                format!("{:.2}", s.median_ms),
                s.stats.rounds.to_string(),
                s.stats.parallel_regions.to_string(),
                s.stats.atomic_rmw.to_string(),
            ]);
            records.push(r);
        }
    }
    println!(
        "{}",
        format_table(
            &format!("Fig. 3: thread sweep on {}", w.name),
            &[
                "Threads",
                "Algorithm",
                "Median ms",
                "Rounds",
                "Barriers",
                "AtomicRMW",
            ],
            &rows,
        )
    );
    let _ = write_csv(&opts.out.join("fig3.csv"), &samples_of(&records));
    let _ = write_json_report(&opts.out.join("fig3.json"), &records);
    println!(
        "paper shape: LLP-Prim fastest at 1–4 threads, plateaus ~8; Boruvka-family scales,\n\
         crosses over ~8 threads; LLP-Boruvka ≤ Boruvka runtime throughout.\n\
         NOTE: wall-clock scaling requires physical cores; see work metrics in the CSV\n\
         (atomic_rmw, parallel_regions) for the machine-independent shape.\n"
    );
}

/// Fig. 4: low vs high core counts across graph types.
fn fig4(opts: &Options) {
    let workloads = [opts.road_workload(), Workload::rmat(opts.scale, opts.seed)];
    let algos = [Algorithm::LlpPrim, Algorithm::Boruvka, Algorithm::LlpBoruvka];
    let low = 2usize;
    let high = opts.max_threads.max(4);
    let mut records: Vec<RunRecord> = Vec::new();
    let mut rows = Vec::new();
    for w in &workloads {
        for &threads in &[low, high] {
            for &algo in &algos {
                let r = time_algorithm_with_report(algo, w, threads, opts.reps);
                let s = &r.sample;
                rows.push(vec![
                    w.name.clone(),
                    format!("{threads}"),
                    s.algo.label().to_string(),
                    format!("{:.2}", s.median_ms),
                ]);
                records.push(r);
            }
        }
    }
    println!(
        "{}",
        format_table(
            "Fig. 4: parallel algorithms at low/high core counts, different graphs",
            &["Workload", "Threads", "Algorithm", "Median ms"],
            &rows,
        )
    );
    let _ = write_csv(&opts.out.join("fig4.csv"), &samples_of(&records));
    let _ = write_json_report(&opts.out.join("fig4.json"), &records);
    println!(
        "paper shape: LLP-Prim best at low core counts (more so on denser graphs);\n\
         Boruvka-family best at high core counts with LLP-Boruvka modestly ahead.\n"
    );
}

/// Ablation: the §V mechanisms, as machine-independent work metrics.
fn ablation(opts: &Options) {
    let workloads = [opts.road_workload(), Workload::rmat(opts.scale, opts.seed)];
    let mut rows = Vec::new();
    let mut records: Vec<RunRecord> = Vec::new();
    for w in &workloads {
        // Heap traffic: Prim vs LLP-Prim (the early-fixing claim).
        let prim_r = time_algorithm_with_report(Algorithm::Prim, w, 1, 1);
        let llp_r = time_algorithm_with_report(Algorithm::LlpPrimSeq, w, 1, 1);
        let (prim, llp) = (&prim_r.sample, &llp_r.sample);
        let n = w.graph.num_vertices() as f64;
        rows.push(vec![
            w.name.clone(),
            "heap ops".into(),
            prim.stats.heap_ops().to_string(),
            llp.stats.heap_ops().to_string(),
            format!(
                "{:.1}% saved",
                100.0 * (1.0 - llp.stats.heap_ops() as f64 / prim.stats.heap_ops() as f64)
            ),
        ]);
        rows.push(vec![
            w.name.clone(),
            "early-fixed vertices".into(),
            "0".into(),
            llp.stats.early_fixes.to_string(),
            format!("{:.1}% of n", 100.0 * llp.stats.early_fixes as f64 / n),
        ]);
        // Synchronization: parallel Boruvka vs LLP-Boruvka.
        let bor_r = time_algorithm_with_report(Algorithm::Boruvka, w, 2, 1);
        let llb_r = time_algorithm_with_report(Algorithm::LlpBoruvka, w, 2, 1);
        let (bor, llb) = (&bor_r.sample, &llb_r.sample);
        rows.push(vec![
            w.name.clone(),
            "atomic RMW ops".into(),
            bor.stats.atomic_rmw.to_string(),
            llb.stats.atomic_rmw.to_string(),
            format!(
                "{:.1}% saved",
                100.0 * (1.0 - llb.stats.atomic_rmw as f64 / bor.stats.atomic_rmw.max(1) as f64)
            ),
        ]);
        rows.push(vec![
            w.name.clone(),
            "CAS retries".into(),
            bor.stats.cas_retries.to_string(),
            llb.stats.cas_retries.to_string(),
            String::new(),
        ]);
        rows.push(vec![
            w.name.clone(),
            "Boruvka rounds".into(),
            bor.stats.rounds.to_string(),
            llb.stats.rounds.to_string(),
            String::new(),
        ]);
        // Hybrid extension: a couple of contraction rounds then Prim.
        let hyb_r = time_algorithm_with_report(Algorithm::Hybrid, w, 2, 1);
        let hyb = &hyb_r.sample;
        rows.push(vec![
            w.name.clone(),
            "hybrid heap ops".into(),
            prim.stats.heap_ops().to_string(),
            hyb.stats.heap_ops().to_string(),
            format!(
                "{:.1}% saved",
                100.0 * (1.0 - hyb.stats.heap_ops() as f64 / prim.stats.heap_ops().max(1) as f64)
            ),
        ]);
        records.extend([prim_r, llp_r, bor_r, llb_r, hyb_r]);
    }
    println!(
        "{}",
        format_table(
            "Ablation: LLP mechanisms (baseline vs LLP, machine-independent)",
            &["Workload", "Metric", "Baseline", "LLP", "Delta"],
            &rows,
        )
    );
    let _ = write_csv(&opts.out.join("ablation.csv"), &samples_of(&records));
    let _ = write_json_report(&opts.out.join("ablation.json"), &records);
}

/// §VII.C closing remark ("graphs of different sizes and the same
/// morphology ... results were analogous"): a size sweep over the road
/// morphology checking that the Fig. 2 ordering is size-stable.
fn sizes(opts: &Options) {
    let mut rows = Vec::new();
    let mut records: Vec<RunRecord> = Vec::new();
    for scale in [Scale::Small, Scale::Medium, Scale::Large] {
        if matches!(scale, Scale::Large) && !matches!(opts.scale, Scale::Large) {
            continue; // only pay for the 1M-vertex graph when asked
        }
        let w = Workload::road(scale, opts.seed);
        let prim_r = time_algorithm_with_report(Algorithm::Prim, &w, 1, opts.reps);
        let llp_r = time_algorithm_with_report(Algorithm::LlpPrimSeq, &w, 1, opts.reps);
        let llb_r = time_algorithm_with_report(Algorithm::LlpBoruvka, &w, 1, opts.reps);
        let (prim, llp, llb) = (&prim_r.sample, &llp_r.sample, &llb_r.sample);
        rows.push(vec![
            w.name.clone(),
            format!("{}", w.graph.num_vertices()),
            format!("{:.2}", prim.median_ms),
            format!("{:.2}", llp.median_ms),
            format!("{:.2}", llb.median_ms),
            format!("{:.2}x", prim.median_ms / llp.median_ms),
        ]);
        records.extend([prim_r, llp_r, llb_r]);
    }
    println!(
        "{}",
        format_table(
            "Size sweep (road morphology): Fig. 2 ordering is size-stable",
            &[
                "Workload",
                "Vertices",
                "Prim ms",
                "LLP-Prim(1T) ms",
                "LLP-Boruvka ms",
                "LLP speedup",
            ],
            &rows,
        )
    );
    let _ = write_csv(&opts.out.join("sizes.csv"), &samples_of(&records));
    let _ = write_json_report(&opts.out.join("sizes.json"), &records);
}

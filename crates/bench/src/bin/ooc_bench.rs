//! `ooc-bench` — the out-of-core pipeline end to end, with an RSS gate.
//!
//! ```text
//! ooc-bench gen --out g.bin [--kind rmat|er] [--scale 16] [--ef 16] [--seed 1]
//!               [--chunk-edges N]
//! ooc-bench run --graph g.bin [--shard-mb MB | --shard-edges N] [--threads T]
//!               [--read-ahead K] [--no-certify] [--report out.json]
//!               [--max-rss-frac 0.5] [--rss-baseline-mb 0]
//!               [--checkpoint ck.llp] [--stop-after-shards N]
//! ```
//!
//! `gen` streams an RMAT / Erdős–Rényi sample straight to the binary
//! file in bounded chunks — RAM stays at the chunk size no matter the
//! scale, so graphs far bigger than memory can be produced. `run` solves
//! and (by default) certifies the file with the sharded Borůvka-filter,
//! then gates the process peak RSS against
//! `max_rss_frac · file_bytes + rss_baseline_mb`: the baseline term
//! absorbs the fixed runtime footprint that dominates on tiny graphs,
//! the fractional term is the headline out-of-core claim (default: peak
//! RSS at most half the edge list). Nonzero exit when the gate fails,
//! certification rejects, or certification was skipped while a gate
//! report was requested.
//!
//! `--checkpoint` names a manifest that is fsync'd after every
//! completed shard: a killed run re-launched with the same flags skips
//! the shards already folded in and still certifies. `--stop-after-shards`
//! interrupts deliberately (exit code 3, distinct from failure) so CI
//! can rehearse the kill-and-resume path without an actual SIGKILL.
//!
//! The JSON report (`llp-mst-ooc-report/v1`):
//!
//! ```json
//! {
//!   "schema": "llp-mst-ooc-report/v1",
//!   "graph": { "path": "g.bin", "n": 65536, "m": 1043931, "bytes": 16702924 },
//!   "shard_edges": 262144, "shards": 4, "threads": 2, "read_ahead": 1,
//!   "certified": true, "msf_edges": 65535, "total_weight": 123.456,
//!   "candidate_edges": 180000, "filtered_edges": 9000,
//!   "wall_ms": 1234.5,
//!   "peak_rss_bytes": 52428800, "rss_frac": 0.31,
//!   "gate": { "max_rss_frac": 0.5, "rss_baseline_mb": 24,
//!             "limit_bytes": 33522462, "pass": true }
//! }
//! ```

use llp_bench::workloads::{stream_to_binary, StreamKind};
use llp_mst::prelude::*;
use llp_runtime::{telemetry, ThreadPool};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    args.remove(0);
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&mut args),
        "run" => cmd_run(&mut args),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ooc-bench {cmd}: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: ooc-bench <gen|run> [options]
  gen --out g.bin [--kind rmat|er] [--scale 16] [--ef 16] [--seed 1] [--chunk-edges N]
  run --graph g.bin [--shard-mb MB | --shard-edges N] [--threads T] [--read-ahead K]
      [--no-certify] [--report out.json] [--max-rss-frac 0.5] [--rss-baseline-mb 0]
      [--checkpoint ck.llp] [--stop-after-shards N]   (exit 3 = interrupted, resumable)";

/// Removes `--name value` from `args`, if present.
fn take_opt(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{name} needs a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

/// Removes the bare flag `--name` from `args`; true if it was present.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    let Some(i) = args.iter().position(|a| a == name) else {
        return false;
    };
    args.remove(i);
    true
}

fn parse<T: std::str::FromStr>(name: &str, v: Option<String>, default: T) -> Result<T, String> {
    match v {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad value for {name}: {s}")),
    }
}

/// Errors on leftover (unrecognized) arguments.
fn no_leftovers(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(format!("unrecognized arguments: {}", args.join(" ")))
    }
}

fn cmd_gen(args: &mut Vec<String>) -> Result<(), String> {
    let out = take_opt(args, "--out")?.ok_or("--out is required")?;
    let kind_s = take_opt(args, "--kind")?.unwrap_or_else(|| "rmat".into());
    let kind = StreamKind::parse(&kind_s).ok_or(format!("bad --kind {kind_s} (rmat|er)"))?;
    let scale: u32 = parse("--scale", take_opt(args, "--scale")?, 16)?;
    let ef: usize = parse("--ef", take_opt(args, "--ef")?, 16)?;
    let seed: u64 = parse("--seed", take_opt(args, "--seed")?, 1)?;
    let chunk: usize = parse("--chunk-edges", take_opt(args, "--chunk-edges")?, 0)?;
    no_leftovers(args)?;
    if scale > 31 {
        return Err("--scale must be <= 31".into());
    }
    let t0 = Instant::now();
    let info = stream_to_binary(&PathBuf::from(&out), kind, scale, ef, seed, chunk)?;
    println!(
        "gen {kind} scale={scale} ef={ef} seed={seed}: n={} m={} bytes={} ({:.1}s)",
        info.num_vertices,
        info.num_edges,
        info.file_bytes,
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

/// Everything `run` measures, marshalled into the report and the gate.
struct RunReport {
    graph: String,
    n: usize,
    m: u64,
    file_bytes: u64,
    shard_edges: usize,
    shards: usize,
    threads: usize,
    read_ahead: usize,
    certified: bool,
    msf_edges: usize,
    total_weight: f64,
    candidate_edges: u64,
    filtered_edges: u64,
    wall_ms: f64,
    peak_rss_bytes: Option<u64>,
    max_rss_frac: f64,
    rss_baseline_mb: u64,
}

impl RunReport {
    /// `max_rss_frac · file_bytes + rss_baseline_mb` in bytes.
    fn limit_bytes(&self) -> u64 {
        (self.max_rss_frac * self.file_bytes as f64) as u64 + self.rss_baseline_mb * (1 << 20)
    }

    /// The gate passes when peak RSS is measurable and under the limit.
    /// On platforms without an RSS probe the gate abstains (passes) —
    /// the report says so via `"peak_rss_bytes": null`.
    fn gate_pass(&self) -> bool {
        match self.peak_rss_bytes {
            Some(rss) => rss <= self.limit_bytes(),
            None => true,
        }
    }

    fn to_json(&self) -> String {
        let (rss, frac) = match self.peak_rss_bytes {
            Some(b) => (b.to_string(), format!("{:.4}", b as f64 / self.file_bytes as f64)),
            None => ("null".into(), "null".into()),
        };
        format!(
            "{{\"schema\":\"llp-mst-ooc-report/v1\",\
             \"graph\":{{\"path\":\"{}\",\"n\":{},\"m\":{},\"bytes\":{}}},\
             \"shard_edges\":{},\"shards\":{},\"threads\":{},\"read_ahead\":{},\
             \"certified\":{},\"msf_edges\":{},\"total_weight\":{:.6},\
             \"candidate_edges\":{},\"filtered_edges\":{},\
             \"wall_ms\":{:.3},\"peak_rss_bytes\":{rss},\"rss_frac\":{frac},\
             \"gate\":{{\"max_rss_frac\":{},\"rss_baseline_mb\":{},\
             \"limit_bytes\":{},\"pass\":{}}}}}",
            self.graph.replace('\\', "\\\\").replace('"', "\\\""),
            self.n,
            self.m,
            self.file_bytes,
            self.shard_edges,
            self.shards,
            self.threads,
            self.read_ahead,
            self.certified,
            self.msf_edges,
            self.total_weight,
            self.candidate_edges,
            self.filtered_edges,
            self.wall_ms,
            self.max_rss_frac,
            self.rss_baseline_mb,
            self.limit_bytes(),
            self.gate_pass(),
        )
    }
}

fn cmd_run(args: &mut Vec<String>) -> Result<(), String> {
    let graph = take_opt(args, "--graph")?.ok_or("--graph is required")?;
    let shard_mb: Option<u64> = take_opt(args, "--shard-mb")?
        .map(|s| s.parse().map_err(|_| format!("bad value for --shard-mb: {s}")))
        .transpose()?;
    let default_shard = ShardedConfig::default().shard_edges;
    let mut shard_edges: usize =
        parse("--shard-edges", take_opt(args, "--shard-edges")?, default_shard)?;
    if let Some(mb) = shard_mb {
        // ~64 B/edge peak working set per resident shard during
        // contraction (see the sharded module docs); budget accordingly.
        shard_edges = ((mb << 20) / 64).max(1) as usize;
    }
    let threads: usize = parse(
        "--threads",
        take_opt(args, "--threads")?,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )?;
    let read_ahead: usize = parse("--read-ahead", take_opt(args, "--read-ahead")?, 1)?;
    let certify = !take_flag(args, "--no-certify");
    let report_path = take_opt(args, "--report")?;
    let max_rss_frac: f64 = parse("--max-rss-frac", take_opt(args, "--max-rss-frac")?, 0.5)?;
    let rss_baseline_mb: u64 =
        parse("--rss-baseline-mb", take_opt(args, "--rss-baseline-mb")?, 0)?;
    let checkpoint = take_opt(args, "--checkpoint")?.map(PathBuf::from);
    let stop_after_shards: Option<usize> = take_opt(args, "--stop-after-shards")?
        .map(|s| s.parse().map_err(|_| format!("bad value for --stop-after-shards: {s}")))
        .transpose()?;
    no_leftovers(args)?;
    if stop_after_shards.is_some() && checkpoint.is_none() {
        return Err("--stop-after-shards without --checkpoint would lose the partial run".into());
    }

    let path = PathBuf::from(&graph);
    let file_bytes = std::fs::metadata(&path).map_err(|e| format!("{graph}: {e}"))?.len();
    let pool = ThreadPool::new(threads.max(1));
    let cfg = ShardedConfig {
        shard_edges: shard_edges.max(1),
        certify,
        read_ahead,
        checkpoint,
        stop_after_shards,
    };

    let t0 = Instant::now();
    let run = match sharded_msf_file(&path, &cfg, &pool) {
        Ok(run) => run,
        Err(ShardedError::Interrupted { shards_done, shards_total }) => {
            // Deliberate interruption is not a failure: the manifest holds
            // shards_done folded shards, and the same command line resumes.
            println!(
                "run {graph}: interrupted after shard {shards_done}/{shards_total}; \
                 re-run with the same --checkpoint to resume"
            );
            std::process::exit(3);
        }
        Err(e) => return Err(e.to_string()),
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    if let Some(done) = run.resumed_from {
        println!("resumed from checkpoint: {done} shards skipped");
    }

    let report = RunReport {
        graph,
        n: run.num_vertices,
        m: run.num_edges,
        file_bytes,
        shard_edges: cfg.shard_edges,
        shards: run.shards,
        threads: threads.max(1),
        read_ahead,
        certified: run.certified,
        msf_edges: run.result.edges.len(),
        total_weight: run.result.total_weight,
        candidate_edges: run.candidate_edges,
        filtered_edges: run.filtered_edges,
        wall_ms,
        peak_rss_bytes: telemetry::peak_rss_bytes(),
        max_rss_frac,
        rss_baseline_mb,
    };

    println!(
        "run {}: n={} m={} shards={} msf_edges={} weight={:.6} certified={} wall={:.1}ms",
        report.graph,
        report.n,
        report.m,
        report.shards,
        report.msf_edges,
        report.total_weight,
        report.certified,
        report.wall_ms,
    );
    match report.peak_rss_bytes {
        Some(rss) => println!(
            "peak rss {:.1} MiB / file {:.1} MiB = {:.3} (limit {:.1} MiB) gate={}",
            rss as f64 / (1 << 20) as f64,
            report.file_bytes as f64 / (1 << 20) as f64,
            rss as f64 / report.file_bytes as f64,
            report.limit_bytes() as f64 / (1 << 20) as f64,
            if report.gate_pass() { "pass" } else { "FAIL" },
        ),
        None => println!("peak rss unavailable on this platform; gate abstains"),
    }

    if let Some(p) = report_path {
        std::fs::write(&p, report.to_json()).map_err(|e| format!("{p}: {e}"))?;
        println!("report written to {p}");
    }

    if !report.certified && certify {
        return Err("certification did not run".into());
    }
    if !report.gate_pass() {
        return Err(format!(
            "RSS gate failed: peak {} > limit {} bytes",
            report.peak_rss_bytes.unwrap_or(0),
            report.limit_bytes()
        ));
    }
    Ok(())
}

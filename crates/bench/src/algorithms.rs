//! Uniform runner over every algorithm in the evaluation.

use llp_graph::{CsrGraph, EdgeKey};
use llp_mst::prelude::*;
use llp_runtime::ThreadPool;

/// Every algorithm the paper's figures mention, plus the extra baselines
/// this workspace ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Classic Prim, lazy heap (the paper's "Prim").
    Prim,
    /// Classic Prim, indexed decrease-key heap (Algorithm 2).
    PrimIndexed,
    /// Kruskal (reference baseline).
    Kruskal,
    /// Filter-Kruskal (pivot partition + filtering).
    FilterKruskal,
    /// Filter-Kruskal with partition, filter and sorts on the pool.
    FilterKruskalPar,
    /// Sequential Boruvka, Algorithm 3.
    BoruvkaSeq,
    /// Parallel Boruvka, GBBS-style (the paper's "Boruvka").
    Boruvka,
    /// LLP-Prim sequential (the paper's "LLP-Prim (1T)").
    LlpPrimSeq,
    /// LLP-Prim parallel.
    LlpPrim,
    /// LLP-Boruvka, Algorithm 6.
    LlpBoruvka,
    /// Boruvka–Prim hybrid (2 LLP contraction rounds, then Prim).
    Hybrid,
    /// SpMV-Boruvka: the round as min-plus SpMV + SpGEMM contraction.
    SpmvBoruvka,
    /// Out-of-core sharded Borůvka-filter (edge file sharded to disk,
    /// per-shard contraction + cross-shard filter, certified streaming).
    Sharded,
}

impl Algorithm {
    /// Figure-label used in output tables (matches the paper's names).
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Prim => "Prim",
            Algorithm::PrimIndexed => "Prim (indexed)",
            Algorithm::Kruskal => "Kruskal",
            Algorithm::FilterKruskal => "Filter-Kruskal",
            Algorithm::FilterKruskalPar => "Filter-Kruskal (par)",
            Algorithm::BoruvkaSeq => "Boruvka (seq)",
            Algorithm::Boruvka => "Boruvka",
            Algorithm::LlpPrimSeq => "LLP-Prim (1T)",
            Algorithm::LlpPrim => "LLP-Prim",
            Algorithm::LlpBoruvka => "LLP-Boruvka",
            Algorithm::Hybrid => "Hybrid B2+Prim",
            Algorithm::SpmvBoruvka => "SpMV-Boruvka",
            Algorithm::Sharded => "Sharded OOC",
        }
    }

    /// True when the algorithm ignores the thread pool.
    pub fn is_sequential(&self) -> bool {
        matches!(
            self,
            Algorithm::Prim
                | Algorithm::PrimIndexed
                | Algorithm::Kruskal
                | Algorithm::FilterKruskal
                | Algorithm::BoruvkaSeq
                | Algorithm::LlpPrimSeq
        )
    }

    /// All algorithms.
    pub fn all() -> &'static [Algorithm] {
        &[
            Algorithm::Prim,
            Algorithm::PrimIndexed,
            Algorithm::Kruskal,
            Algorithm::FilterKruskal,
            Algorithm::FilterKruskalPar,
            Algorithm::BoruvkaSeq,
            Algorithm::Boruvka,
            Algorithm::LlpPrimSeq,
            Algorithm::LlpPrim,
            Algorithm::LlpBoruvka,
            Algorithm::Hybrid,
            Algorithm::SpmvBoruvka,
            Algorithm::Sharded,
        ]
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Runs `algo` on `graph` with `pool`, rooting tree algorithms at `root`.
///
/// Computes the LLP-Prim MWE table per call; benchmarks that amortise it
/// across runs (the paper computes MWE "when the graph is input") should
/// use [`run_algorithm_with_mwe`].
///
/// # Panics
/// Panics when a Prim-family algorithm is given a disconnected graph —
/// benchmark workloads are connected by construction.
pub fn run_algorithm(
    algo: Algorithm,
    graph: &CsrGraph,
    root: u32,
    pool: &ThreadPool,
) -> MstResult {
    run_algorithm_with_mwe(algo, graph, root, pool, None)
}

/// [`run_algorithm`] with an optionally precomputed per-vertex
/// minimum-weight-edge table for the LLP-Prim family.
pub fn run_algorithm_with_mwe(
    algo: Algorithm,
    graph: &CsrGraph,
    root: u32,
    pool: &ThreadPool,
    mwe: Option<&[EdgeKey]>,
) -> MstResult {
    const CONNECTED: &str = "benchmark graph must be connected";
    match algo {
        Algorithm::Prim => prim_lazy(graph, root).expect(CONNECTED),
        Algorithm::PrimIndexed => prim_indexed(graph, root).expect(CONNECTED),
        Algorithm::Kruskal => kruskal(graph),
        Algorithm::FilterKruskal => filter_kruskal(graph),
        Algorithm::FilterKruskalPar => filter_kruskal_par(graph, pool),
        Algorithm::BoruvkaSeq => boruvka_seq(graph),
        Algorithm::Boruvka => boruvka_par(graph, pool),
        Algorithm::LlpPrimSeq => match mwe {
            Some(t) => llp_prim_seq_with_mwe(graph, root, t).expect(CONNECTED),
            None => llp_prim_seq(graph, root).expect(CONNECTED),
        },
        Algorithm::LlpPrim => match mwe {
            Some(t) => llp_prim_par_with_mwe(graph, root, pool, t).expect(CONNECTED),
            None => llp_prim_par(graph, root, pool).expect(CONNECTED),
        },
        Algorithm::LlpBoruvka => llp_boruvka(graph, pool),
        Algorithm::Hybrid => hybrid_boruvka_prim(graph, pool, 2).expect(CONNECTED),
        Algorithm::SpmvBoruvka => spmv_boruvka_par(graph, pool),
        // Round-trips through a temp binary file with a shard size small
        // enough that every sweep genuinely exercises multi-shard folding
        // (and the run is certified end-to-end by the streaming sweep).
        Algorithm::Sharded => {
            sharded_msf_graph(graph, (graph.num_edges() / 6).max(1), pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llp_graph::samples::{fig1, FIG1_MST_WEIGHT};

    #[test]
    fn every_algorithm_solves_fig1_identically() {
        let g = fig1();
        let pool = ThreadPool::new(2);
        let oracle = kruskal(&g).canonical_keys();
        for &algo in Algorithm::all() {
            let r = run_algorithm(algo, &g, 0, &pool);
            assert_eq!(r.total_weight, FIG1_MST_WEIGHT, "{algo}");
            assert_eq!(r.canonical_keys(), oracle, "{algo}");
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Algorithm::all().iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Algorithm::all().len());
    }

    #[test]
    fn sequential_flag_consistent() {
        assert!(Algorithm::Prim.is_sequential());
        assert!(Algorithm::LlpPrimSeq.is_sequential());
        assert!(Algorithm::FilterKruskal.is_sequential());
        assert!(!Algorithm::FilterKruskalPar.is_sequential());
        assert!(!Algorithm::LlpPrim.is_sequential());
        assert!(!Algorithm::LlpBoruvka.is_sequential());
        assert!(!Algorithm::SpmvBoruvka.is_sequential());
        assert!(!Algorithm::Sharded.is_sequential());
    }
}

//! Benchmark workloads mirroring the paper's Table I at laptop scale.
//!
//! | Paper dataset | Type | Here |
//! |---|---|---|
//! | `USA-road-d.USA` (23.9M vertices) | road | [`Workload::road`] — grid road network, scale-parameterised |
//! | `graph500-s25-ef16` (~17M used) | scalefree | [`Workload::rmat`] — Kronecker, scale-parameterised |
//!
//! A real DIMACS file can be substituted with [`Workload::from_dimacs`],
//! so dropping the authentic `USA-road-d.USA.gr` next to the harness
//! reproduces on the paper's exact dataset.

use llp_graph::generators::{
    erdos_renyi_stream, rmat, rmat_stream, road_network, RmatParams, RoadParams,
    DEFAULT_CHUNK_EDGES,
};
use llp_graph::io::{read_dimacs, BinaryFileWriter};
use llp_graph::{CsrGraph, EdgeKey, VertexId};
use std::io::BufRead;
use std::path::Path;

/// Workload family, matching Table I's "Type" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Sparse, large-diameter, locally-weighted (USA-road morphology).
    Road,
    /// Scale-free Kronecker (Graph500 morphology).
    ScaleFree,
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadKind::Road => write!(f, "road"),
            WorkloadKind::ScaleFree => write!(f, "scalefree"),
        }
    }
}

/// Benchmark size presets. The paper's graphs are ~20M vertices; presets
/// scale the same morphologies down to what a laptop-class machine builds
/// and solves in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~10k vertices: smoke tests, criterion benches.
    Small,
    /// ~120k vertices: default for `repro`.
    Medium,
    /// ~1M vertices: closest to paper conditions that 1 machine-hour allows.
    Large,
}

impl Scale {
    /// Parses `small` / `medium` / `large`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }
}

/// A named benchmark graph.
pub struct Workload {
    /// Display name (Table I "Name used" analogue).
    pub name: String,
    /// Morphology family.
    pub kind: WorkloadKind,
    /// The graph.
    pub graph: CsrGraph,
    /// Per-vertex minimum-weight edges, computed at load time as the paper
    /// prescribes ("the set MWE can be computed when the graph is input");
    /// passed to the LLP-Prim family so benchmark timings exclude it.
    pub mwe: Vec<EdgeKey>,
}

fn mwe_table(graph: &CsrGraph) -> Vec<EdgeKey> {
    (0..graph.num_vertices() as VertexId)
        .map(|v| graph.min_edge(v).unwrap_or_else(EdgeKey::infinite))
        .collect()
}

impl Workload {
    /// Road-network workload at the given scale.
    pub fn road(scale: Scale, seed: u64) -> Workload {
        let side = match scale {
            Scale::Small => 105,
            Scale::Medium => 350,
            Scale::Large => 1000,
        };
        let graph = road_network(RoadParams::usa_like(side, side, seed));
        Workload {
            name: format!("Road {}k", graph.num_vertices() / 1000),
            kind: WorkloadKind::Road,
            mwe: mwe_table(&graph),
            graph,
        }
    }

    /// Graph500-style RMAT workload at the given scale (edge factor 16,
    /// like the paper's `graph500-s25-ef16`).
    pub fn rmat(scale: Scale, seed: u64) -> Workload {
        let s = match scale {
            Scale::Small => 13,
            Scale::Medium => 17,
            Scale::Large => 20,
        };
        // Like the paper's "Graph500 18M" (the used subset of the scale-25
        // graph): benchmark on the giant connected component so the
        // Prim-family algorithms apply.
        let graph = llp_graph::algo::largest_component(&rmat(RmatParams::graph500(s, 16, seed)));
        Workload {
            name: format!("Graph500 s{s} ef16"),
            kind: WorkloadKind::ScaleFree,
            mwe: mwe_table(&graph),
            graph,
        }
    }

    /// The paper's two-dataset suite (Table I) at the given scale.
    pub fn table1(scale: Scale, seed: u64) -> Vec<Workload> {
        vec![Workload::road(scale, seed), Workload::rmat(scale, seed)]
    }

    /// Loads a real DIMACS `.gr` dataset (e.g. `USA-road-d.USA.gr`).
    pub fn from_dimacs<R: BufRead>(name: &str, reader: R) -> Result<Workload, String> {
        let graph = read_dimacs(reader).map_err(|e| e.to_string())?;
        Ok(Workload {
            name: name.to_string(),
            kind: WorkloadKind::Road,
            mwe: mwe_table(&graph),
            graph,
        })
    }

    /// The largest connected component's representative root (vertex 0 is
    /// always on the road skeleton; for RMAT it is almost always in the
    /// giant component, and the Prim-family runners check anyway).
    pub fn root(&self) -> u32 {
        0
    }
}

/// Generator family for [`stream_to_binary`]. Separate from
/// [`WorkloadKind`] because the streamable families are the sampled ones
/// (RMAT, Erdős–Rényi); the road grid is built structurally and stays an
/// in-RAM workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Graph500-style Kronecker sample.
    Rmat,
    /// G(n, m) uniform sample.
    ErdosRenyi,
}

impl StreamKind {
    /// Parses `rmat` / `er`.
    pub fn parse(s: &str) -> Option<StreamKind> {
        match s {
            "rmat" => Some(StreamKind::Rmat),
            "er" => Some(StreamKind::ErdosRenyi),
            _ => None,
        }
    }
}

impl std::fmt::Display for StreamKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamKind::Rmat => write!(f, "rmat"),
            StreamKind::ErdosRenyi => write!(f, "er"),
        }
    }
}

/// Shape of a file written by [`stream_to_binary`].
#[derive(Debug, Clone, Copy)]
pub struct StreamedFile {
    /// Vertex-id domain (`2^scale`).
    pub num_vertices: u64,
    /// Edge records written (self-loops are discarded at the source, so
    /// slightly below `edge_factor · 2^scale`).
    pub num_edges: u64,
    /// On-disk size, header included.
    pub file_bytes: u64,
}

/// Streams a sampled workload straight to `path` in the on-disk binary
/// format, holding at most `chunk_edges` edges (16 B each) in memory.
///
/// The in-RAM generators materialize the full edge list and then the CSR
/// — ~3× the file size in peak RAM — which is exactly what the
/// out-of-core pipeline cannot afford; this path keeps the generator's
/// footprint at the chunk size no matter the scale. The streams draw
/// from the same seeded RNG sequence as the in-RAM twins, so the file
/// read back through the sanitising readers equals the in-RAM graph for
/// the same parameters. Pass `chunk_edges = 0` for the default
/// ([`DEFAULT_CHUNK_EDGES`], ~16 MiB).
pub fn stream_to_binary(
    path: &Path,
    kind: StreamKind,
    scale: u32,
    edge_factor: usize,
    seed: u64,
    chunk_edges: usize,
) -> Result<StreamedFile, String> {
    let n = 1u64 << scale;
    let chunk_edges = if chunk_edges == 0 { DEFAULT_CHUNK_EDGES } else { chunk_edges };
    // Crash-safe path: the file lands under its real name only after a
    // complete, fsynced write (a killed generation leaves no torn file).
    let mut w = BinaryFileWriter::create(path, n as usize)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let sink = |chunk: &[llp_graph::Edge]| -> std::io::Result<()> {
        w.write_edges(chunk).map_err(|e| std::io::Error::other(e.to_string()))
    };
    match kind {
        StreamKind::Rmat => {
            rmat_stream(RmatParams::graph500(scale, edge_factor, seed), chunk_edges, sink)
        }
        StreamKind::ErdosRenyi => {
            erdos_renyi_stream(n as usize, edge_factor as u64 * n, seed, chunk_edges, sink)
        }
    }
    .map_err(|e| e.to_string())?;
    let m = w.finish().map_err(|e| e.to_string())?;
    let file_bytes = std::fs::metadata(path).map_err(|e| e.to_string())?.len();
    Ok(StreamedFile { num_vertices: n, num_edges: m, file_bytes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_road_is_connected_and_sparse() {
        let w = Workload::road(Scale::Small, 1);
        assert_eq!(w.kind, WorkloadKind::Road);
        assert!(llp_graph::algo::is_connected(&w.graph));
        assert!(w.graph.average_degree() < 4.0);
    }

    #[test]
    fn small_rmat_is_scalefree_sized_and_connected() {
        let w = Workload::rmat(Scale::Small, 1);
        // giant component of the scale-13 graph: most vertices survive
        assert!(w.graph.num_vertices() > (1 << 12));
        assert!(w.graph.num_vertices() <= (1 << 13));
        assert!(w.graph.num_edges() > 4 * (1 << 12));
        assert!(llp_graph::algo::is_connected(&w.graph));
    }

    #[test]
    fn table1_has_both_kinds() {
        let suite = Workload::table1(Scale::Small, 2);
        assert_eq!(suite.len(), 2);
        assert_eq!(suite[0].kind, WorkloadKind::Road);
        assert_eq!(suite[1].kind, WorkloadKind::ScaleFree);
    }

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn streamed_file_equals_in_ram_generator() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("llp-bench-stream-{}.bin", std::process::id()));
        let info = stream_to_binary(&path, StreamKind::Rmat, 8, 8, 9, 100).unwrap();
        assert_eq!(info.num_vertices, 1 << 8);
        assert_eq!(info.file_bytes, 28 + 16 * info.num_edges);
        let f = std::fs::File::open(&path).unwrap();
        let g = llp_graph::io::read_binary_seek(std::io::BufReader::new(f)).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(g, llp_graph::generators::rmat(RmatParams::graph500(8, 8, 9)));
    }

    #[test]
    fn streamed_er_equals_in_ram_generator() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("llp-bench-stream-er-{}.bin", std::process::id()));
        stream_to_binary(&path, StreamKind::ErdosRenyi, 7, 4, 3, 0).unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let g = llp_graph::io::read_binary_seek(std::io::BufReader::new(f)).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(g, llp_graph::generators::erdos_renyi(1 << 7, 4 << 7, 3));
    }

    #[test]
    fn stream_kind_parses() {
        assert_eq!(StreamKind::parse("rmat"), Some(StreamKind::Rmat));
        assert_eq!(StreamKind::parse("er"), Some(StreamKind::ErdosRenyi));
        assert_eq!(StreamKind::parse("road"), None);
    }

    #[test]
    fn dimacs_loader_works() {
        let src = "p sp 3 2\na 1 2 5\na 2 3 7\n";
        let w = Workload::from_dimacs("test", std::io::BufReader::new(src.as_bytes())).unwrap();
        assert_eq!(w.graph.num_vertices(), 3);
    }
}

//! # llp-bench — reproduction harness for the paper's evaluation
//!
//! Regenerates every table and figure of the paper:
//!
//! | Paper artifact | Module / binary command |
//! |---|---|
//! | Table I (datasets) | [`workloads`] / `repro table1` |
//! | Fig. 2 (single-threaded: Prim vs LLP-Prim(1T) vs Boruvka) | `repro fig2` |
//! | Fig. 3 (thread sweep on the road network) | `repro fig3` |
//! | Fig. 4 (low vs high core counts across graph types) | `repro fig4` |
//! | §V claims (heap-op reduction, early fixing, sync reduction) | `repro ablation` |
//!
//! The paper measured a 48-vCPU GCE C2 VM with ≤ 32 threads; this harness
//! also reports **machine-independent work metrics** (heap operations,
//! early fixes, rounds, pointer jumps, atomic RMW traffic) so the figures'
//! *shapes* are reproducible on any core count. Criterion benches with the
//! same structure live in `benches/`.

pub mod algorithms;
pub mod harness;
pub mod microbench;
pub mod workloads;

pub use algorithms::{run_algorithm, Algorithm};
pub use harness::{format_table, time_algorithm, Measurement, Sample};
pub use workloads::{stream_to_binary, Scale, StreamKind, StreamedFile, Workload, WorkloadKind};

//! Timing, aggregation and table/CSV/JSON output.

use crate::algorithms::{run_algorithm_with_mwe, Algorithm};
use crate::workloads::Workload;
use llp_mst::AlgoStats;
use llp_runtime::{telemetry, ThreadPool};
use std::io::Write;
use std::time::Instant;

/// One timed configuration.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Algorithm run.
    pub algo: Algorithm,
    /// Workload name.
    pub workload: String,
    /// Threads in the pool.
    pub threads: usize,
    /// Median wall-clock milliseconds over the repetitions.
    pub median_ms: f64,
    /// Minimum observed milliseconds.
    pub min_ms: f64,
    /// Work metrics of the last run.
    pub stats: AlgoStats,
    /// Total weight (sanity echo; all algorithms must agree).
    pub total_weight: f64,
}

/// Convenience alias used by the repro binary.
pub type Measurement = Sample;

/// Times `algo` on a workload with a dedicated pool of `threads`,
/// returning the median of `reps` runs (first run warms caches and is
/// discarded when `reps > 1`). The workload's precomputed MWE table is
/// passed through, so LLP-Prim timings exclude graph-load work, as in the
/// paper.
pub fn time_algorithm(algo: Algorithm, w: &Workload, threads: usize, reps: usize) -> Sample {
    let pool = ThreadPool::new(threads);
    let mut times_ms: Vec<f64> = Vec::with_capacity(reps);
    let mut last = None;
    let total = if reps > 1 { reps + 1 } else { reps };
    for i in 0..total {
        let t0 = Instant::now();
        let result = run_algorithm_with_mwe(algo, &w.graph, w.root(), &pool, Some(&w.mwe));
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        if !(reps > 1 && i == 0) {
            times_ms.push(dt);
        }
        last = Some(result);
    }
    times_ms.sort_by(f64::total_cmp);
    let last = last.expect("at least one run");
    Sample {
        algo,
        workload: w.name.clone(),
        threads,
        median_ms: times_ms[times_ms.len() / 2],
        min_ms: times_ms[0],
        stats: last.stats,
        total_weight: last.total_weight,
    }
}

/// A timed sample paired with the phase-level telemetry of one
/// instrumented run of the same configuration.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Timing and work metrics from the *uninstrumented* repetitions.
    pub sample: Sample,
    /// Phase timings / wave histograms / counters from one extra run with
    /// telemetry recording force-enabled.
    pub telemetry: telemetry::RunReport,
    /// Whether the instrumented run's output passed the oracle-free
    /// near-linear MSF certifier ([`llp_mst::certify::certify_msf_par`]).
    pub certified: bool,
    /// Process peak RSS in bytes after the run
    /// ([`telemetry::peak_rss_bytes`]); `None` off-Linux. A process-level
    /// high-water mark: it only rises across records of one process.
    pub peak_rss_bytes: Option<u64>,
}

/// Like [`time_algorithm`], additionally executing one extra run with
/// telemetry recording force-enabled to capture a [`telemetry::RunReport`],
/// and certifying that run's output with the near-linear oracle-free
/// certifier (recorded as [`RunRecord::certified`]). The timing statistics
/// come exclusively from the uninstrumented repetitions, so enabling
/// reports never perturbs the published numbers.
pub fn time_algorithm_with_report(
    algo: Algorithm,
    w: &Workload,
    threads: usize,
    reps: usize,
) -> RunRecord {
    let sample = time_algorithm(algo, w, threads, reps);
    let was_enabled = telemetry::enabled();
    telemetry::set_enabled(true);
    telemetry::begin_run();
    let pool = ThreadPool::new(threads);
    let result = run_algorithm_with_mwe(algo, &w.graph, w.root(), &pool, Some(&w.mwe));
    let certified = match llp_mst::certify::certify_msf_par(&w.graph, &result, &pool) {
        Ok(()) => true,
        Err(err) => {
            eprintln!(
                "warning: {} on {} with {} threads FAILED certification: {err}",
                algo.label(),
                w.name,
                threads
            );
            false
        }
    };
    let report = telemetry::take_report();
    telemetry::set_enabled(was_enabled);
    RunRecord {
        sample,
        telemetry: report,
        certified,
        peak_rss_bytes: telemetry::peak_rss_bytes(),
    }
}

/// Renders samples as an aligned text table.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Writes samples as CSV to `path` (creating parent directories).
pub fn write_csv(path: &std::path::Path, samples: &[Sample]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        f,
        "algorithm,workload,threads,median_ms,min_ms,total_weight,heap_pushes,heap_pops,\
         decrease_keys,edges_scanned,early_fixes,heap_fixes,rounds,pointer_jumps,\
         cas_retries,atomic_rmw,parallel_regions"
    )?;
    for s in samples {
        writeln!(
            f,
            "{},{},{},{:.3},{:.3},{},{},{},{},{},{},{},{},{},{},{},{}",
            s.algo.label(),
            s.workload,
            s.threads,
            s.median_ms,
            s.min_ms,
            s.total_weight,
            s.stats.heap_pushes,
            s.stats.heap_pops,
            s.stats.decrease_keys,
            s.stats.edges_scanned,
            s.stats.early_fixes,
            s.stats.heap_fixes,
            s.stats.rounds,
            s.stats.pointer_jumps,
            s.stats.cas_retries,
            s.stats.atomic_rmw,
            s.stats.parallel_regions,
        )?;
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn stats_json(s: &AlgoStats) -> String {
    format!(
        "{{\"heap_pushes\":{},\"heap_pops\":{},\"decrease_keys\":{},\"edges_scanned\":{},\
         \"early_fixes\":{},\"heap_fixes\":{},\"rounds\":{},\"pointer_jumps\":{},\
         \"cas_retries\":{},\"atomic_rmw\":{},\"parallel_regions\":{}}}",
        s.heap_pushes,
        s.heap_pops,
        s.decrease_keys,
        s.edges_scanned,
        s.early_fixes,
        s.heap_fixes,
        s.rounds,
        s.pointer_jumps,
        s.cas_retries,
        s.atomic_rmw,
        s.parallel_regions,
    )
}

/// Serialises one record as a JSON object: identity + timing + work
/// metrics + the embedded telemetry report.
pub fn record_json(r: &RunRecord) -> String {
    let s = &r.sample;
    let peak_rss = match r.peak_rss_bytes {
        Some(b) => b.to_string(),
        None => "null".into(),
    };
    format!(
        "{{\"algorithm\":\"{}\",\"workload\":\"{}\",\"threads\":{},\
         \"median_ms\":{:.6},\"min_ms\":{:.6},\"total_weight\":{:.6},\
         \"certified\":{},\"peak_rss_bytes\":{},\"stats\":{},\"telemetry\":{}}}",
        json_escape(s.algo.label()),
        json_escape(&s.workload),
        s.threads,
        s.median_ms,
        s.min_ms,
        s.total_weight,
        r.certified,
        peak_rss,
        stats_json(&s.stats),
        r.telemetry.to_json(),
    )
}

/// Writes run records as a structured JSON report to `path` (creating
/// parent directories). Schema:
///
/// ```json
/// {
///   "schema": "llp-mst-run-report/v1",
///   "runs": [
///     {
///       "algorithm": "...", "workload": "...", "threads": 1,
///       "median_ms": 1.5, "min_ms": 1.4, "total_weight": 16.0,
///       "certified": true,
///       "peak_rss_bytes": 20971520,
///       "stats": { "heap_pushes": 0, ... },
///       "telemetry": { "enabled": true, "phases": [...],
///                      "series": [...], "counters": {...} }
///     }
///   ]
/// }
/// ```
pub fn write_json_report(path: &std::path::Path, records: &[RunRecord]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{\"schema\":\"llp-mst-run-report/v1\",\"runs\":[")?;
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        writeln!(f, "{}{}", record_json(r), sep)?;
    }
    writeln!(f, "]}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Scale;

    #[test]
    fn time_algorithm_produces_sane_sample() {
        let w = Workload::road(Scale::Small, 1);
        let s = time_algorithm(Algorithm::Kruskal, &w, 1, 2);
        assert!(s.median_ms > 0.0);
        assert!(s.min_ms <= s.median_ms);
        assert!(s.total_weight > 0.0);
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            "demo",
            &["algo", "ms"],
            &[
                vec!["Prim".into(), "1.5".into()],
                vec!["LLP-Prim (1T)".into(), "1.2".into()],
            ],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("LLP-Prim (1T)"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn run_record_captures_telemetry_without_perturbing_timing() {
        let w = Workload::road(Scale::Small, 3);
        let was = llp_runtime::telemetry::enabled();
        let rec = time_algorithm_with_report(Algorithm::LlpPrimSeq, &w, 1, 1);
        // The pre-existing enable state is restored.
        assert_eq!(llp_runtime::telemetry::enabled(), was);
        assert!(rec.sample.median_ms > 0.0);
        assert!(rec.certified, "instrumented run must certify");
        if cfg!(feature = "telemetry") {
            assert!(rec.telemetry.enabled);
            let names: Vec<&str> = rec
                .telemetry
                .phases
                .iter()
                .map(|p| p.name.as_str())
                .collect();
            assert!(names.contains(&"frontier-wave"), "phases: {names:?}");
            assert!(names.contains(&"q-flush"), "phases: {names:?}");
            assert!(
                rec.telemetry
                    .series
                    .iter()
                    .any(|s| s.name == "frontier-size" && s.count > 0),
                "series: {:?}",
                rec.telemetry.series
            );
        } else {
            assert!(!rec.telemetry.enabled);
            assert!(rec.telemetry.phases.is_empty());
        }
    }

    #[test]
    fn json_report_is_structurally_valid() {
        let w = Workload::road(Scale::Small, 4);
        let rec = time_algorithm_with_report(Algorithm::LlpBoruvka, &w, 2, 1);
        let dir = std::env::temp_dir().join("llp-bench-json-test");
        let path = dir.join("report.json");
        write_json_report(&path, &[rec.clone(), rec]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"schema\":\"llp-mst-run-report/v1\""));
        assert!(text.contains("\"certified\":true"));
        assert!(text.contains("\"peak_rss_bytes\":"));
        if cfg!(target_os = "linux") {
            // The gauge is live on Linux: a real byte count, never null.
            assert!(!text.contains("\"peak_rss_bytes\":null"));
        }
        assert!(text.contains("\"stats\":{\"heap_pushes\""));
        assert!(text.contains("\"telemetry\":{\"enabled\""));
        // Balanced braces/brackets outside of strings (no strings here
        // contain braces) — a cheap structural validity check.
        let opens = text.matches(['{', '[']).count();
        let closes = text.matches(['}', ']']).count();
        assert_eq!(opens, closes);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_round_trip_has_header_and_rows() {
        let w = Workload::road(Scale::Small, 2);
        let s = time_algorithm(Algorithm::Kruskal, &w, 1, 1);
        let dir = std::env::temp_dir().join("llp-bench-test");
        let path = dir.join("out.csv");
        write_csv(&path, &[s]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("algorithm,workload"));
        assert_eq!(text.lines().count(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }
}

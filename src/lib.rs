//! # llp-mst-suite — parallel MST via Lattice Linear Predicate detection
//!
//! Umbrella crate re-exporting the whole workspace:
//!
//! * [`graph`] — CSR graphs, generators (RMAT/Kronecker, road networks),
//!   DIMACS I/O ([`llp_graph`]).
//! * [`runtime`] — the parallel substrate: thread pool, parallel loops,
//!   concurrent bags, atomic min utilities ([`llp_runtime`]).
//! * [`llp`] — the generic Lattice Linear Predicate framework
//!   ([`llp_core`]).
//! * [`mst`] — the paper's algorithms: Prim, Kruskal, Boruvka, parallel
//!   Boruvka, **LLP-Prim** and **LLP-Boruvka** ([`llp_mst`]).
//!
//! ## Quickstart
//!
//! ```
//! use llp_mst_suite::prelude::*;
//!
//! // The weighted graph of the paper's Fig. 1.
//! let graph = llp_mst_suite::graph::samples::fig1();
//! let pool = ThreadPool::new(2);
//! let mst = llp_prim_par(&graph, 0, &pool).expect("graph is connected");
//! assert_eq!(mst.total_weight, 16.0); // edges {2, 3, 4, 7}
//! ```

pub use llp_core as llp;
pub use llp_graph as graph;
pub use llp_mst as mst;
pub use llp_runtime as runtime;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use llp_graph::{CsrGraph, Edge, EdgeKey, GraphBuilder, VertexId};
    pub use llp_mst::prelude::*;
    pub use llp_runtime::ThreadPool;
}

//! Cross-crate integration: every MST/MSF algorithm in the workspace must
//! return the identical canonical result on every input.

use llp_mst_suite::graph::generators::{
    barabasi_albert, caterpillar, complete, cycle, erdos_renyi, ladder, path,
    random_geometric, rmat, road_network, star, RmatParams, RoadParams,
};
use llp_mst_suite::graph::{CsrGraph, EdgeKey};
use llp_mst_suite::prelude::*;

/// Runs every forest-capable algorithm and asserts canonical agreement;
/// returns the canonical MSF keys.
fn assert_forest_algorithms_agree(g: &CsrGraph) -> Vec<EdgeKey> {
    let pool = ThreadPool::new(3);
    let oracle = kruskal(g);
    let candidates: Vec<(&str, MstResult)> = vec![
        ("kruskal_par_sort", kruskal_par_sort(g, &pool)),
        ("filter_kruskal", filter_kruskal(g)),
        ("boruvka_seq", boruvka_seq(g)),
        ("boruvka_par", boruvka_par(g, &pool)),
        ("llp_boruvka", llp_boruvka(g, &pool)),
    ];
    for (name, r) in &candidates {
        assert_eq!(
            r.canonical_keys(),
            oracle.canonical_keys(),
            "{name} disagrees with kruskal"
        );
        assert_eq!(r.num_trees, oracle.num_trees, "{name} tree count");
        verify_msf(g, r).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    oracle.canonical_keys()
}

/// Additionally runs the Prim family (requires a connected graph).
fn assert_all_algorithms_agree_connected(g: &CsrGraph) {
    let keys = assert_forest_algorithms_agree(g);
    let pool = ThreadPool::new(3);
    let candidates: Vec<(&str, MstResult)> = vec![
        ("prim_lazy", prim_lazy(g, 0).unwrap()),
        ("prim_indexed", prim_indexed(g, 0).unwrap()),
        ("llp_prim_seq", llp_prim_seq(g, 0).unwrap()),
        ("llp_prim_par", llp_prim_par(g, 0, &pool).unwrap()),
        ("hybrid", hybrid_boruvka_prim(g, &pool, 2).unwrap()),
    ];
    for (name, r) in &candidates {
        assert_eq!(r.canonical_keys(), keys, "{name} disagrees");
    }
}

#[test]
fn classic_topologies() {
    for seed in 0..3 {
        assert_all_algorithms_agree_connected(&path(50, seed));
        assert_all_algorithms_agree_connected(&cycle(50, seed));
        assert_all_algorithms_agree_connected(&star(50, seed));
        assert_all_algorithms_agree_connected(&complete(25, seed));
        assert_all_algorithms_agree_connected(&ladder(20, seed));
        assert_all_algorithms_agree_connected(&caterpillar(10, 4, seed));
    }
}

#[test]
fn road_networks() {
    for seed in 0..3 {
        let g = road_network(RoadParams::usa_like(18, 22, seed));
        assert_all_algorithms_agree_connected(&g);
    }
}

#[test]
fn barabasi_albert_graphs() {
    for seed in 0..3 {
        let g = barabasi_albert(300, 2, seed);
        assert_all_algorithms_agree_connected(&g);
    }
}

#[test]
fn rmat_graphs_as_forests() {
    for seed in 0..3 {
        let g = rmat(RmatParams::graph500(9, 8, seed));
        assert_forest_algorithms_agree(&g);
    }
}

#[test]
fn random_sparse_and_dense_forests() {
    for (n, m) in [(60, 40), (60, 120), (60, 600)] {
        for seed in 0..3 {
            let g = erdos_renyi(n, m, seed);
            assert_forest_algorithms_agree(&g);
        }
    }
}

#[test]
fn geometric_graphs() {
    for seed in 0..3 {
        let g = random_geometric(150, 0.12, seed);
        assert_forest_algorithms_agree(&g);
    }
}

#[test]
fn degenerate_graphs() {
    assert_forest_algorithms_agree(&CsrGraph::empty(0));
    assert_forest_algorithms_agree(&CsrGraph::empty(1));
    assert_forest_algorithms_agree(&CsrGraph::empty(10));
    assert_all_algorithms_agree_connected(&path(2, 0));
}

#[test]
fn duplicate_weight_graphs_are_canonical() {
    let g = llp_mst_suite::graph::samples::all_equal_weights(10);
    assert_all_algorithms_agree_connected(&g);
}

#[test]
fn thread_count_does_not_change_results() {
    let g = road_network(RoadParams::usa_like(15, 15, 9));
    let oracle = kruskal(&g).canonical_keys();
    for threads in [1, 2, 5, 8] {
        let pool = ThreadPool::new(threads);
        assert_eq!(
            llp_prim_par(&g, 0, &pool).unwrap().canonical_keys(),
            oracle,
            "llp_prim_par at {threads} threads"
        );
        assert_eq!(
            llp_boruvka(&g, &pool).canonical_keys(),
            oracle,
            "llp_boruvka at {threads} threads"
        );
        assert_eq!(
            boruvka_par(&g, &pool).canonical_keys(),
            oracle,
            "boruvka_par at {threads} threads"
        );
    }
}

#[test]
fn repeated_parallel_runs_are_deterministic() {
    let g = rmat(RmatParams::graph500(8, 8, 3));
    let pool = ThreadPool::new(4);
    let first = llp_boruvka(&g, &pool).canonical_keys();
    for _ in 0..10 {
        assert_eq!(llp_boruvka(&g, &pool).canonical_keys(), first);
        assert_eq!(boruvka_par(&g, &pool).canonical_keys(), first);
    }
}

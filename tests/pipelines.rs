//! End-to-end pipelines across crates: generate → serialise → reload →
//! solve → verify, plus failure-injection checks on the public API.

use llp_mst_suite::graph::generators::{erdos_renyi, road_network, RoadParams};
use llp_mst_suite::graph::io::{
    read_binary, read_dimacs, read_edge_list, write_binary, write_dimacs, write_edge_list,
};
use llp_mst_suite::graph::{CsrGraph, Edge, GraphBuilder};
use llp_mst_suite::prelude::*;

#[test]
fn dimacs_round_trip_preserves_mst() {
    let g = road_network(RoadParams::usa_like(12, 12, 5));
    let mut buf = Vec::new();
    write_dimacs(&g, &mut buf).unwrap();
    let g2 = read_dimacs(std::io::BufReader::new(buf.as_slice())).unwrap();
    assert_eq!(
        kruskal(&g).canonical_keys(),
        kruskal(&g2).canonical_keys()
    );
}

#[test]
fn binary_round_trip_preserves_mst_exactly() {
    let g = erdos_renyi(200, 800, 3);
    let mut buf = Vec::new();
    write_binary(&g, &mut buf).unwrap();
    let g2 = read_binary(buf.as_slice()).unwrap();
    assert_eq!(g, g2);
    let pool = ThreadPool::new(2);
    assert_eq!(
        llp_boruvka(&g, &pool).canonical_keys(),
        llp_boruvka(&g2, &pool).canonical_keys()
    );
}

#[test]
fn edge_list_round_trip_preserves_mst() {
    let g = erdos_renyi(100, 300, 9);
    let mut buf = Vec::new();
    write_edge_list(&g, &mut buf).unwrap();
    let g2 = read_edge_list(std::io::BufReader::new(buf.as_slice()), g.num_vertices()).unwrap();
    assert_eq!(
        kruskal(&g).canonical_keys(),
        kruskal(&g2).canonical_keys()
    );
}

#[test]
fn generate_solve_verify_full_pipeline() {
    // The complete user journey: generate a workload, compute the MST with
    // the paper's algorithm, verify it three independent ways.
    let g = road_network(RoadParams::usa_like(25, 30, 11));
    let pool = ThreadPool::with_available_threads();
    let mst = llp_prim_par(&g, 0, &pool).expect("road networks are connected");
    verify_forest_structure(&g, &mst).unwrap();
    verify_msf(&g, &mst).unwrap();
    assert!(mst.is_spanning_tree(g.num_vertices()));
    assert_eq!(mst.num_trees, 1);
}

#[test]
fn disconnected_inputs_fail_gracefully_across_the_api() {
    let g = CsrGraph::from_edges(
        6,
        &[Edge::new(0, 1, 1.0), Edge::new(2, 3, 2.0), Edge::new(4, 5, 3.0)],
    );
    let pool = ThreadPool::new(2);
    // Prim family: typed error.
    assert!(matches!(
        prim_lazy(&g, 0),
        Err(MstError::Disconnected { reached: 2, total: 6 })
    ));
    assert!(matches!(llp_prim_seq(&g, 0), Err(MstError::Disconnected { .. })));
    assert!(matches!(
        llp_prim_par(&g, 0, &pool),
        Err(MstError::Disconnected { .. })
    ));
    // Boruvka family: forest result.
    let msf = llp_boruvka(&g, &pool);
    assert_eq!(msf.num_trees, 3);
    assert_eq!(msf.total_weight, 6.0);
    verify_msf(&g, &msf).unwrap();
}

#[test]
fn builder_sanitisation_feeds_algorithms_correctly() {
    // Multi-edges, self loops and reversed duplicates must all collapse
    // before the algorithms see the graph.
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 0, 1.0); // self loop: dropped
    b.add_edge(0, 1, 5.0);
    b.add_edge(1, 0, 2.0); // duplicate, keeps min
    b.add_edge(1, 2, 1.0);
    b.add_edge(2, 3, 1.0);
    b.add_edge(3, 2, 9.0); // duplicate, keeps min (1.0)
    let g = b.build();
    assert_eq!(g.num_edges(), 3);
    let mst = prim_lazy(&g, 0).unwrap();
    assert_eq!(mst.total_weight, 2.0 + 1.0 + 1.0);
}

#[test]
fn umbrella_prelude_quickstart_compiles_and_runs() {
    // The README quickstart, as a test.
    let graph = llp_mst_suite::graph::samples::fig1();
    let pool = ThreadPool::new(2);
    let mst = llp_prim_par(&graph, 0, &pool).expect("graph is connected");
    assert_eq!(mst.total_weight, 16.0);
}

#[test]
fn large_smoke_road_network() {
    // A larger end-to-end run (~62k vertices) exercising parallel paths.
    let g = road_network(RoadParams::usa_like(250, 250, 123));
    let pool = ThreadPool::with_available_threads();
    let a = llp_prim_par(&g, 0, &pool).unwrap();
    let b = llp_boruvka(&g, &pool);
    let c = boruvka_par(&g, &pool);
    assert_eq!(a.canonical_keys(), b.canonical_keys());
    assert_eq!(b.canonical_keys(), c.canonical_keys());
    assert!(a.is_spanning_tree(g.num_vertices()));
}

#[test]
fn stats_flow_through_the_public_api() {
    let g = road_network(RoadParams::usa_like(20, 20, 2));
    let pool = ThreadPool::new(2);
    let prim = prim_lazy(&g, 0).unwrap();
    let llp = llp_prim_seq(&g, 0).unwrap();
    let llb = llp_boruvka(&g, &pool);
    let bor = boruvka_par(&g, &pool);
    assert!(prim.stats.heap_ops() > 0);
    assert!(llp.stats.early_fixes > 0);
    assert!(llb.stats.pointer_jumps > 0);
    assert!(bor.stats.atomic_rmw > 0);
    assert!(llb.stats.atomic_rmw < bor.stats.atomic_rmw);
}

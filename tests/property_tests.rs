//! Property-based tests (proptest) over randomly generated graphs.
//!
//! Core invariants:
//! * every algorithm's output equals the Kruskal oracle (canonical MSF);
//! * the MSF satisfies the cut property directly (no oracle);
//! * the MSF is invariant under edge insertion order;
//! * LLP-Prim's work never exceeds classic Prim's heap traffic;
//! * the MWE of every vertex is always a forest edge (the fact early
//!   fixing relies on).

use llp_mst_suite::graph::{CsrGraph, Edge, GraphBuilder};
use llp_mst_suite::prelude::*;
use proptest::prelude::*;

/// Strategy: a random weighted graph with up to `max_n` vertices. Weights
/// are drawn from a tiny integer set to force duplicate raw weights, which
/// stresses the EdgeKey tie-breaking.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec(
            (0..n as u32, 0..n as u32, 1..6u32),
            0..max_m,
        )
        .prop_map(move |triples| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in triples {
                if u != v {
                    b.add_edge(u, v, w as f64);
                }
            }
            b.build()
        })
    })
}

/// Strategy: a guaranteed-connected graph (random graph + spanning path).
fn arb_connected_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1..6u32), 0..max_m).prop_map(
            move |triples| {
                let mut b = GraphBuilder::new(n);
                for i in 1..n as u32 {
                    // spine guarantees connectivity; weights vary by index
                    b.add_edge(i - 1, i, 10.0 + (i % 7) as f64);
                }
                for (u, v, w) in triples {
                    if u != v {
                        b.add_edge(u, v, w as f64);
                    }
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forest_algorithms_match_kruskal(g in arb_graph(40, 120)) {
        let pool = ThreadPool::new(2);
        let oracle = kruskal(&g);
        prop_assert_eq!(boruvka_seq(&g).canonical_keys(), oracle.canonical_keys());
        prop_assert_eq!(boruvka_par(&g, &pool).canonical_keys(), oracle.canonical_keys());
        prop_assert_eq!(llp_boruvka(&g, &pool).canonical_keys(), oracle.canonical_keys());
    }

    #[test]
    fn prim_family_matches_kruskal_on_connected(g in arb_connected_graph(30, 90)) {
        let pool = ThreadPool::new(2);
        let oracle = kruskal(&g);
        prop_assert_eq!(prim_lazy(&g, 0).unwrap().canonical_keys(), oracle.canonical_keys());
        prop_assert_eq!(prim_indexed(&g, 0).unwrap().canonical_keys(), oracle.canonical_keys());
        prop_assert_eq!(llp_prim_seq(&g, 0).unwrap().canonical_keys(), oracle.canonical_keys());
        prop_assert_eq!(llp_prim_par(&g, 0, &pool).unwrap().canonical_keys(), oracle.canonical_keys());
    }

    #[test]
    fn msf_satisfies_cut_and_cycle_properties(g in arb_graph(20, 50)) {
        let msf = kruskal(&g);
        prop_assert!(verify_cut_property(&g, &msf).is_ok());
        prop_assert!(verify_cycle_property(&g, &msf).is_ok());
        prop_assert!(verify_forest_structure(&g, &msf).is_ok());
    }

    #[test]
    fn msf_invariant_under_edge_order(
        g in arb_graph(25, 60),
        seed in 0u64..1000,
    ) {
        // Rebuild the same graph with shuffled edge insertion order.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut edges: Vec<Edge> = g.edges().collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        edges.shuffle(&mut rng);
        let mut b = GraphBuilder::new(g.num_vertices());
        b.extend(edges);
        let g2 = b.build();
        prop_assert_eq!(
            kruskal(&g).canonical_keys(),
            kruskal(&g2).canonical_keys()
        );
        let pool = ThreadPool::new(2);
        prop_assert_eq!(
            llp_boruvka(&g, &pool).canonical_keys(),
            llp_boruvka(&g2, &pool).canonical_keys()
        );
    }

    #[test]
    fn llp_prim_never_does_more_heap_work(g in arb_connected_graph(40, 150)) {
        let prim = prim_lazy(&g, 0).unwrap();
        let llp = llp_prim_seq(&g, 0).unwrap();
        prop_assert!(llp.stats.heap_ops() <= prim.stats.heap_ops(),
            "llp {} > prim {}", llp.stats.heap_ops(), prim.stats.heap_ops());
        // Accounting: every vertex except the root is fixed exactly once.
        prop_assert_eq!(
            llp.stats.early_fixes + llp.stats.heap_fixes,
            (g.num_vertices() - 1) as u64
        );
    }

    #[test]
    fn every_vertex_mwe_is_a_forest_edge(g in arb_graph(25, 60)) {
        let msf_keys = kruskal(&g).canonical_keys();
        for v in 0..g.num_vertices() as u32 {
            if let Some(mwe) = g.min_edge(v) {
                prop_assert!(
                    msf_keys.binary_search(&mwe).is_ok(),
                    "mwe of {} ({:?}) not in MSF", v, mwe
                );
            }
        }
    }

    #[test]
    fn msf_weight_is_minimal_among_random_spanning_structures(
        g in arb_connected_graph(15, 40),
        seed in 0u64..1000,
    ) {
        // Any spanning tree obtained from a random edge order (via union-
        // find) weighs at least the MSF.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut edges: Vec<Edge> = g.edges().collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        edges.shuffle(&mut rng);
        let mut uf = llp_mst_suite::mst::union_find::UnionFind::new(g.num_vertices());
        let mut weight = 0.0;
        for e in &edges {
            if uf.union(e.u, e.v) {
                weight += e.w;
            }
        }
        let mst = kruskal(&g);
        prop_assert!(mst.total_weight <= weight + 1e-9);
    }

    #[test]
    fn mst_equivariant_under_vertex_permutation(
        g in arb_connected_graph(25, 70),
        seed in 0u64..1000,
    ) {
        use llp_mst_suite::graph::transform::{permute_vertices, random_permutation};
        let n = g.num_vertices();
        let perm = random_permutation(n, seed);
        let pg = permute_vertices(&g, &perm);
        // With duplicate raw weights the canonical tie-breaking depends on
        // vertex ids, so only the *weight* is permutation-invariant…
        let w1 = kruskal(&g).total_weight;
        let w2 = kruskal(&pg).total_weight;
        prop_assert!((w1 - w2).abs() < 1e-9, "{w1} vs {w2}");

        // …but with distinct weights the edge set itself is equivariant.
        let mut b = GraphBuilder::new(n);
        for (i, e) in g.edges().enumerate() {
            b.add_edge(e.u, e.v, 1.0 + i as f64); // force distinct weights
        }
        let gd = b.build();
        let pgd = permute_vertices(&gd, &perm);
        let mut mapped: Vec<llp_mst_suite::graph::EdgeKey> = kruskal(&gd)
            .edges
            .iter()
            .map(|e| llp_mst_suite::graph::EdgeKey::new(
                e.w,
                perm[e.u as usize],
                perm[e.v as usize],
            ))
            .collect();
        mapped.sort_unstable();
        prop_assert_eq!(mapped, kruskal(&pgd).canonical_keys());
    }

    #[test]
    fn mst_invariant_under_monotone_weight_maps(g in arb_connected_graph(25, 70)) {
        use llp_mst_suite::graph::transform::map_weights;
        let doubled = map_weights(&g, |w| 2.0 * w + 1.0);
        let base: Vec<(u32, u32)> = kruskal(&g)
            .edges.iter().map(|e| e.canonical_endpoints()).collect();
        let mapped: Vec<(u32, u32)> = kruskal(&doubled)
            .edges.iter().map(|e| e.canonical_endpoints()).collect();
        let mut base = base; base.sort_unstable();
        let mut mapped = mapped; mapped.sort_unstable();
        prop_assert_eq!(base, mapped);
    }

    #[test]
    fn hybrid_matches_oracle(g in arb_connected_graph(25, 70), rounds in 0usize..4) {
        let pool = ThreadPool::new(2);
        let hybrid = llp_mst_suite::mst::hybrid::hybrid_boruvka_prim(&g, &pool, rounds).unwrap();
        prop_assert_eq!(hybrid.canonical_keys(), kruskal(&g).canonical_keys());
    }

    #[test]
    fn rooted_forest_is_consistent(g in arb_graph(25, 60)) {
        use llp_mst_suite::mst::tree::RootedForest;
        let msf = kruskal(&g);
        let f = RootedForest::new(g.num_vertices(), &msf, 0);
        prop_assert_eq!(f.num_trees(), msf.num_trees);
        // Total of parent weights equals the forest weight.
        let sum: f64 = f.parent_weight.iter().sum();
        prop_assert!((sum - msf.total_weight).abs() < 1e-9);
        // Depths are consistent with parents.
        for v in 0..g.num_vertices() as u32 {
            if !f.is_root(v) {
                prop_assert_eq!(f.depth[v as usize], f.depth[f.parent[v as usize] as usize] + 1);
            }
        }
    }

    #[test]
    fn stats_are_internally_consistent(g in arb_connected_graph(30, 90)) {
        let r = llp_prim_seq(&g, 0).unwrap();
        // Heap pops never exceed pushes; every heap fix required a pop.
        prop_assert!(r.stats.heap_pops <= r.stats.heap_pushes);
        prop_assert!(r.stats.heap_fixes <= r.stats.heap_pops.max(r.stats.heap_fixes));
        // Edge scans are bounded by the arc count.
        prop_assert!(r.stats.edges_scanned <= g.num_arcs() as u64);
    }
}

//! Property-style tests over randomly generated graphs.
//!
//! Originally written against `proptest`; hermetic builds have no registry
//! access, so the same properties are exercised as deterministic seed sweeps
//! over the in-repo [`llp_runtime::rng::SmallRng`] — every case that runs in
//! CI is exactly reproducible from its seed.
//!
//! Core invariants:
//! * every algorithm's output equals the Kruskal oracle (canonical MSF);
//! * the MSF satisfies the cut property directly (no oracle);
//! * the MSF is invariant under edge insertion order;
//! * LLP-Prim's work never exceeds classic Prim's heap traffic;
//! * the MWE of every vertex is always a forest edge (the fact early
//!   fixing relies on).

use llp_mst_suite::graph::{CsrGraph, Edge, GraphBuilder};
use llp_mst_suite::prelude::*;
use llp_runtime::rng::SmallRng;

const CASES: u64 = 64;

/// A random weighted graph with `2..max_n` vertices. Weights are drawn from
/// a tiny integer set to force duplicate raw weights, which stresses the
/// EdgeKey tie-breaking.
fn random_graph(rng: &mut SmallRng, max_n: usize, max_m: usize) -> CsrGraph {
    let n = rng.gen_range(2..max_n);
    let m = rng.gen_range(0..max_m);
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            b.add_edge(u, v, rng.gen_range(1..6u32) as f64);
        }
    }
    b.build()
}

/// A guaranteed-connected graph (random graph + spanning path).
fn random_connected_graph(rng: &mut SmallRng, max_n: usize, max_m: usize) -> CsrGraph {
    let n = rng.gen_range(2..max_n);
    let m = rng.gen_range(0..max_m);
    let mut b = GraphBuilder::new(n);
    for i in 1..n as u32 {
        // spine guarantees connectivity; weights vary by index
        b.add_edge(i - 1, i, 10.0 + (i % 7) as f64);
    }
    for _ in 0..m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            b.add_edge(u, v, rng.gen_range(1..6u32) as f64);
        }
    }
    b.build()
}

#[test]
fn forest_algorithms_match_kruskal() {
    let pool = ThreadPool::new(2);
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, 40, 120);
        let oracle = kruskal(&g);
        assert_eq!(
            boruvka_seq(&g).canonical_keys(),
            oracle.canonical_keys(),
            "seed {seed}"
        );
        assert_eq!(
            boruvka_par(&g, &pool).canonical_keys(),
            oracle.canonical_keys(),
            "seed {seed}"
        );
        assert_eq!(
            llp_boruvka(&g, &pool).canonical_keys(),
            oracle.canonical_keys(),
            "seed {seed}"
        );
    }
}

#[test]
fn prim_family_matches_kruskal_on_connected() {
    let pool = ThreadPool::new(2);
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_connected_graph(&mut rng, 30, 90);
        let oracle = kruskal(&g);
        assert_eq!(
            prim_lazy(&g, 0).unwrap().canonical_keys(),
            oracle.canonical_keys(),
            "seed {seed}"
        );
        assert_eq!(
            prim_indexed(&g, 0).unwrap().canonical_keys(),
            oracle.canonical_keys(),
            "seed {seed}"
        );
        assert_eq!(
            llp_prim_seq(&g, 0).unwrap().canonical_keys(),
            oracle.canonical_keys(),
            "seed {seed}"
        );
        assert_eq!(
            llp_prim_par(&g, 0, &pool).unwrap().canonical_keys(),
            oracle.canonical_keys(),
            "seed {seed}"
        );
    }
}

#[test]
fn msf_satisfies_cut_and_cycle_properties() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, 20, 50);
        let msf = kruskal(&g);
        assert!(verify_cut_property(&g, &msf).is_ok(), "seed {seed}");
        assert!(verify_cycle_property(&g, &msf).is_ok(), "seed {seed}");
        assert!(verify_forest_structure(&g, &msf).is_ok(), "seed {seed}");
    }
}

#[test]
fn msf_invariant_under_edge_order() {
    let pool = ThreadPool::new(2);
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, 25, 60);
        // Rebuild the same graph with shuffled edge insertion order.
        let mut edges: Vec<Edge> = g.edges().collect();
        rng.shuffle(&mut edges);
        let mut b = GraphBuilder::new(g.num_vertices());
        b.extend(edges);
        let g2 = b.build();
        assert_eq!(
            kruskal(&g).canonical_keys(),
            kruskal(&g2).canonical_keys(),
            "seed {seed}"
        );
        assert_eq!(
            llp_boruvka(&g, &pool).canonical_keys(),
            llp_boruvka(&g2, &pool).canonical_keys(),
            "seed {seed}"
        );
    }
}

#[test]
fn llp_prim_never_does_more_heap_work() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_connected_graph(&mut rng, 40, 150);
        let prim = prim_lazy(&g, 0).unwrap();
        let llp = llp_prim_seq(&g, 0).unwrap();
        assert!(
            llp.stats.heap_ops() <= prim.stats.heap_ops(),
            "seed {seed}: llp {} > prim {}",
            llp.stats.heap_ops(),
            prim.stats.heap_ops()
        );
        // Accounting: every vertex except the root is fixed exactly once.
        assert_eq!(
            llp.stats.early_fixes + llp.stats.heap_fixes,
            (g.num_vertices() - 1) as u64,
            "seed {seed}"
        );
    }
}

#[test]
fn every_vertex_mwe_is_a_forest_edge() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, 25, 60);
        let msf_keys = kruskal(&g).canonical_keys();
        for v in 0..g.num_vertices() as u32 {
            if let Some(mwe) = g.min_edge(v) {
                assert!(
                    msf_keys.binary_search(&mwe).is_ok(),
                    "seed {seed}: mwe of {v} ({mwe:?}) not in MSF"
                );
            }
        }
    }
}

#[test]
fn msf_weight_is_minimal_among_random_spanning_structures() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_connected_graph(&mut rng, 15, 40);
        // Any spanning tree obtained from a random edge order (via union-
        // find) weighs at least the MSF.
        let mut edges: Vec<Edge> = g.edges().collect();
        rng.shuffle(&mut edges);
        let mut uf = llp_mst_suite::mst::union_find::UnionFind::new(g.num_vertices());
        let mut weight = 0.0;
        for e in &edges {
            if uf.union(e.u, e.v) {
                weight += e.w;
            }
        }
        let mst = kruskal(&g);
        assert!(mst.total_weight <= weight + 1e-9, "seed {seed}");
    }
}

#[test]
fn mst_equivariant_under_vertex_permutation() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_connected_graph(&mut rng, 25, 70);
        use llp_mst_suite::graph::transform::{permute_vertices, random_permutation};
        let n = g.num_vertices();
        let perm = random_permutation(n, seed);
        let pg = permute_vertices(&g, &perm);
        // With duplicate raw weights the canonical tie-breaking depends on
        // vertex ids, so only the *weight* is permutation-invariant…
        let w1 = kruskal(&g).total_weight;
        let w2 = kruskal(&pg).total_weight;
        assert!((w1 - w2).abs() < 1e-9, "seed {seed}: {w1} vs {w2}");

        // …but with distinct weights the edge set itself is equivariant.
        let mut b = GraphBuilder::new(n);
        for (i, e) in g.edges().enumerate() {
            b.add_edge(e.u, e.v, 1.0 + i as f64); // force distinct weights
        }
        let gd = b.build();
        let pgd = permute_vertices(&gd, &perm);
        let mut mapped: Vec<llp_mst_suite::graph::EdgeKey> = kruskal(&gd)
            .edges
            .iter()
            .map(|e| {
                llp_mst_suite::graph::EdgeKey::new(e.w, perm[e.u as usize], perm[e.v as usize])
            })
            .collect();
        mapped.sort_unstable();
        assert_eq!(mapped, kruskal(&pgd).canonical_keys(), "seed {seed}");
    }
}

#[test]
fn mst_invariant_under_monotone_weight_maps() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_connected_graph(&mut rng, 25, 70);
        use llp_mst_suite::graph::transform::map_weights;
        let doubled = map_weights(&g, |w| 2.0 * w + 1.0);
        let mut base: Vec<(u32, u32)> = kruskal(&g)
            .edges
            .iter()
            .map(|e| e.canonical_endpoints())
            .collect();
        let mut mapped: Vec<(u32, u32)> = kruskal(&doubled)
            .edges
            .iter()
            .map(|e| e.canonical_endpoints())
            .collect();
        base.sort_unstable();
        mapped.sort_unstable();
        assert_eq!(base, mapped, "seed {seed}");
    }
}

#[test]
fn hybrid_matches_oracle() {
    let pool = ThreadPool::new(2);
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_connected_graph(&mut rng, 25, 70);
        let rounds = (seed % 4) as usize;
        let hybrid = llp_mst_suite::mst::hybrid::hybrid_boruvka_prim(&g, &pool, rounds).unwrap();
        assert_eq!(
            hybrid.canonical_keys(),
            kruskal(&g).canonical_keys(),
            "seed {seed} rounds {rounds}"
        );
    }
}

#[test]
fn rooted_forest_is_consistent() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_graph(&mut rng, 25, 60);
        use llp_mst_suite::mst::tree::RootedForest;
        let msf = kruskal(&g);
        let f = RootedForest::new(g.num_vertices(), &msf, 0);
        assert_eq!(f.num_trees(), msf.num_trees, "seed {seed}");
        // Total of parent weights equals the forest weight.
        let sum: f64 = f.parent_weight.iter().sum();
        assert!((sum - msf.total_weight).abs() < 1e-9, "seed {seed}");
        // Depths are consistent with parents.
        for v in 0..g.num_vertices() as u32 {
            if !f.is_root(v) {
                assert_eq!(
                    f.depth[v as usize],
                    f.depth[f.parent[v as usize] as usize] + 1,
                    "seed {seed}"
                );
            }
        }
    }
}

#[test]
fn stats_are_internally_consistent() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_connected_graph(&mut rng, 30, 90);
        let r = llp_prim_seq(&g, 0).unwrap();
        // Heap pops never exceed pushes; every heap fix required a pop.
        assert!(r.stats.heap_pops <= r.stats.heap_pushes, "seed {seed}");
        assert!(
            r.stats.heap_fixes <= r.stats.heap_pops.max(r.stats.heap_fixes),
            "seed {seed}"
        );
        // Edge scans are bounded by the arc count.
        assert!(r.stats.edges_scanned <= g.num_arcs() as u64, "seed {seed}");
    }
}

//! End-to-end checks of the paper's worked examples and stated claims.

use llp_mst_suite::graph::samples::{fig1, small_forest, FIG1_MST_WEIGHT};
use llp_mst_suite::llp::instances::PointerJump;
use llp_mst_suite::llp::{solve_parallel, solve_sequential};
use llp_mst_suite::mst::spec::LlpPrimSpec;
use llp_mst_suite::prelude::*;
use llp_mst_suite::runtime::telemetry;

/// §IV: "the edges are added to the tree in the order 4, 3, 7, 2" (Prim
/// from vertex a).
#[test]
fn prim_adds_fig1_edges_in_paper_order() {
    let g = fig1();
    let mst = prim_lazy(&g, 0).unwrap();
    let order: Vec<f64> = mst.edges.iter().map(|e| e.w).collect();
    assert_eq!(order, vec![4.0, 3.0, 7.0, 2.0]);
}

/// §IV: Boruvka's first round picks mwe 4, 3, 3, 2, 2 for a..e, i.e. the
/// distinct edges {4, 3, 2}; the second round adds 7.
#[test]
fn boruvka_fig1_round_structure() {
    let g = fig1();
    let mst = boruvka_seq(&g);
    assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
    // 2 productive rounds + 1 terminating scan.
    assert_eq!(mst.stats.rounds, 3);
}

/// §V.A: the lattice of proposal vectors has bottom (3,3,2,2) and
/// "in all there are 3 × 4 × 3 × 2 = 72 possible S vectors".
#[test]
fn fig1_lattice_dimensions_match_paper() {
    let g = fig1();
    // Non-root vertices b..e have degrees 3, 4, 3, 2: 72 vectors.
    let product: usize = (1..5u32).map(|v| g.degree(v)).product();
    assert_eq!(product, 72);
    let bottoms: Vec<f64> = (1..5u32)
        .map(|v| g.min_edge(v).unwrap().weight())
        .collect();
    assert_eq!(bottoms, vec![3.0, 3.0, 2.0, 2.0]);
}

/// §V.A worked trace: LLP-Prim fixes c, b, e early; only d via the heap.
#[test]
fn llp_prim_fig1_early_fixes_match_trace() {
    let g = fig1();
    let mst = llp_prim_seq(&g, 0).unwrap();
    assert_eq!(mst.stats.early_fixes, 3);
    assert_eq!(mst.stats.heap_fixes, 1);
    assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
}

/// §VI worked trace: LLP-Boruvka resolves Fig. 1 in two rounds, adding
/// T = {4, 3, 2} then T = {7}.
#[test]
fn llp_boruvka_fig1_two_rounds() {
    let g = fig1();
    let pool = ThreadPool::new(2);
    let mst = llp_boruvka(&g, &pool);
    assert_eq!(mst.stats.rounds, 2);
    assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
}

/// §VI example state: after round-1 parent selection the paper reaches
/// G = {(a,b), (b,b), (c,b), (d,d), (e,d)} post pointer jumping — i.e.
/// roots {b, d}. We verify through the generic pointer-jump instance.
#[test]
fn fig1_round1_pointer_jump_roots() {
    // Round-1 parents from the paper: a->c, b->b, c->b, d->d, e->d.
    let pj = PointerJump::new(vec![2, 1, 1, 3, 3]);
    let sol = solve_sequential(&pj).unwrap();
    assert_eq!(sol.state, vec![1, 1, 1, 3, 3]); // stars rooted at b and d
}

/// Lemma 4: the pointer-jumping predicate is lattice-linear and the
/// parallel solver terminates with the same answer as the sequential one.
#[test]
fn pointer_jump_parallel_equals_sequential_on_deep_trees() {
    let n = 500usize;
    let parent: Vec<usize> = (0..n).map(|v| v.saturating_sub(1)).collect();
    let pj = PointerJump::new(parent);
    let pool = ThreadPool::new(4);
    let seq = solve_sequential(&pj).unwrap();
    let par = solve_parallel(&pj, &pool).unwrap();
    assert_eq!(seq.state, par.state);
    assert!(par.stats.rounds as usize <= 2 + n.ilog2() as usize);
}

/// Algorithm 4 (the executable spec) and Algorithm 5 (the optimised
/// implementation) agree on the paper's example and random graphs.
#[test]
fn spec_and_implementation_agree() {
    let g = fig1();
    let spec = LlpPrimSpec::new(&g, 0).unwrap().solve().unwrap();
    let fast = llp_prim_seq(&g, 0).unwrap();
    assert_eq!(spec.canonical_keys(), fast.canonical_keys());
    assert_eq!(spec.total_weight, FIG1_MST_WEIGHT);
}

/// Abstract claim of §I: "since each element of G can be tested for
/// forbidden independently this produces opportunities for parallelism" —
/// operationally, LLP-Prim must fix multiple vertices per heap extraction.
#[test]
fn llp_prim_fixes_many_vertices_per_heap_pop() {
    let g = llp_mst_suite::graph::generators::road_network(
        llp_mst_suite::graph::generators::RoadParams::usa_like(40, 40, 7),
    );
    let mst = llp_prim_seq(&g, 0).unwrap();
    let fixes_per_pop = mst.stats.early_fixes as f64 / mst.stats.heap_fixes.max(1) as f64;
    assert!(
        fixes_per_pop > 1.0,
        "early fixing should dominate: {fixes_per_pop:.2} early fixes per heap fix"
    );
}

/// Golden Filter-Kruskal trace on the paper's example graphs: with the
/// base case pinned to 2 edges, the recursion structure — partition
/// rounds, filter outcomes, recursion depth, base-case sizes — is fully
/// determined by the canonical `EdgeKey` order, and the sequential and
/// pool-parallel variants must produce byte-identical traces (they share
/// one recursion; only the substrate differs).
#[test]
fn filter_kruskal_golden_trace_on_paper_graphs() {
    // With the `telemetry` feature compiled out every probe is a no-op and
    // there is no trace to pin; result agreement is covered elsewhere.
    let was = telemetry::enabled();
    telemetry::set_enabled(true);
    let compiled_in = telemetry::enabled();
    telemetry::set_enabled(was);
    if !compiled_in {
        return;
    }

    fn fk_trace(g: &llp_mst_suite::graph::CsrGraph, pool: Option<&ThreadPool>) -> Trace {
        let was = telemetry::enabled();
        telemetry::set_enabled(true);
        telemetry::begin_run();
        let result = match pool {
            Some(pool) => filter_kruskal_par_with_base_case(g, pool, 2),
            None => filter_kruskal_with_base_case(g, 2),
        };
        let report = telemetry::take_report();
        telemetry::set_enabled(was);
        let counter = |name: &str| {
            report
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |&(_, v)| v)
        };
        let series = |name: &str| {
            report
                .series
                .iter()
                .find(|s| s.name == name)
                .map(|s| (s.count, s.sum, s.max))
        };
        Trace {
            keys: result.canonical_keys(),
            partition_rounds: counter("fk-partition-rounds"),
            filter_kept: counter("fk-filter-kept"),
            filter_dropped: counter("fk-filter-dropped"),
            recursion_depth: series("fk-recursion-depth"),
            base_case: series("fk-base-case"),
        }
    }

    #[derive(Debug, PartialEq)]
    struct Trace {
        keys: Vec<llp_mst_suite::graph::EdgeKey>,
        partition_rounds: u64,
        filter_kept: u64,
        filter_dropped: u64,
        /// (samples, sum, max) of the per-round recursion depth.
        recursion_depth: Option<(u64, u64, u64)>,
        /// (samples, sum, max) of base-case sizes.
        base_case: Option<(u64, u64, u64)>,
    }

    let pool = ThreadPool::new(4);

    // Fig. 1 (5 vertices, 7 edges, MST {2, 3, 4, 7}): three partition
    // rounds reaching depth 1; the filter inspects 6 heavy edges across the
    // rounds, dropping 2 as intra-component.
    let g = fig1();
    let seq = fk_trace(&g, None);
    assert_eq!(seq.keys, kruskal(&g).canonical_keys());
    assert_eq!(seq.partition_rounds, 3);
    assert_eq!(seq.filter_kept, 4);
    assert_eq!(seq.filter_dropped, 2);
    assert_eq!(seq.recursion_depth, Some((3, 1, 1)));
    assert_eq!(seq.base_case, Some((3, 5, 2)));
    assert_eq!(fk_trace(&g, Some(&pool)), seq, "fig1: par trace must match seq");

    // The disconnected forest sample (4 edges, 3 trees): one partition
    // round at depth 0; the filter drops 1 of 2 heavy edges.
    let g = small_forest();
    let seq = fk_trace(&g, None);
    assert_eq!(seq.keys, kruskal(&g).canonical_keys());
    assert_eq!(seq.partition_rounds, 1);
    assert_eq!(seq.filter_kept, 1);
    assert_eq!(seq.filter_dropped, 1);
    assert_eq!(seq.recursion_depth, Some((1, 0, 0)));
    assert_eq!(seq.base_case, Some((2, 3, 2)));
    assert_eq!(
        fk_trace(&g, Some(&pool)),
        seq,
        "small_forest: par trace must match seq"
    );
}

/// §VII Fig. 2 headline, as a machine-independent assertion: LLP-Prim
/// performs strictly less heap work than Prim on both workload families.
#[test]
fn fig2_heap_work_reduction_holds_on_both_morphologies() {
    let road = llp_mst_suite::graph::generators::road_network(
        llp_mst_suite::graph::generators::RoadParams::usa_like(30, 30, 1),
    );
    let rmat = llp_mst_suite::graph::algo::largest_component(
        &llp_mst_suite::graph::generators::rmat(
            llp_mst_suite::graph::generators::RmatParams::graph500(10, 16, 1),
        ),
    );
    for g in [road, rmat] {
        let prim = prim_lazy(&g, 0).unwrap();
        let llp = llp_prim_seq(&g, 0).unwrap();
        assert!(llp.stats.heap_ops() < prim.stats.heap_ops());
    }
}

//! Chaos-seeded smoke run across every algorithm in the suite.
//!
//! With the `chaos` feature compiled in (`cargo test --features chaos`)
//! each seed perturbs `parallel_for` chunk claims, broadcast start order
//! and grain choices, so the same assertions explore adversarial
//! schedules; without the feature the seeds are inert and this remains a
//! plain cross-algorithm certification smoke test, cheap enough for
//! tier-1.

use llp_mst_suite::graph::algo::largest_component;
use llp_mst_suite::graph::generators::{erdos_renyi, road_network, RoadParams};
use llp_mst_suite::prelude::*;
use llp_mst_suite::runtime::chaos;

#[test]
fn all_algorithms_certify_under_chaos_seeds() {
    let road = road_network(RoadParams::usa_like(28, 28, 9));
    let er = largest_component(&erdos_renyi(600, 2400, 7));
    let pool = ThreadPool::new(4);
    for seed in [1u64, 2, 3, 4] {
        chaos::set_seed(Some(seed));
        for (gname, g) in [("road", &road), ("er", &er)] {
            let reference = kruskal(g);
            certify_msf(g, &reference)
                .unwrap_or_else(|e| panic!("kruskal on {gname}, seed {seed}: {e}"));
            let keys = reference.canonical_keys();
            let results: Vec<(&str, MstResult)> = vec![
                ("kruskal_par_sort", kruskal_par_sort(g, &pool)),
                ("filter_kruskal", filter_kruskal(g)),
                ("filter_kruskal_par", filter_kruskal_par(g, &pool)),
                // Small base case: partition + filter rounds actually run on
                // the pool under each chaos schedule, not just the base sort.
                (
                    "filter_kruskal_par(base=64)",
                    filter_kruskal_par_with_base_case(g, &pool, 64),
                ),
                ("boruvka_seq", boruvka_seq(g)),
                ("boruvka_par", boruvka_par(g, &pool)),
                ("llp_boruvka", llp_boruvka(g, &pool)),
                ("spmv_boruvka_par", spmv_boruvka_par(g, &pool)),
                // Round-trips through a temp binary file; a shard size
                // forcing several fold rounds under each chaos schedule.
                ("sharded_ooc", sharded_msf_graph(g, g.num_edges() / 5 + 1, &pool)),
                ("prim_lazy", prim_lazy(g, 0).unwrap()),
                ("prim_indexed", prim_indexed(g, 0).unwrap()),
                ("llp_prim_seq", llp_prim_seq(g, 0).unwrap()),
                ("llp_prim_par", llp_prim_par(g, 0, &pool).unwrap()),
                ("hybrid", hybrid_boruvka_prim(g, &pool, 2).unwrap()),
            ];
            for (name, r) in &results {
                assert_eq!(
                    r.canonical_keys(),
                    keys,
                    "{name} diverges on {gname} under chaos seed {seed}"
                );
                certify_msf_par(g, r, &pool)
                    .unwrap_or_else(|e| panic!("{name} on {gname}, seed {seed}: {e}"));
            }
        }
        chaos::set_seed(None);
    }
}

//! The generic LLP framework beyond MST.
//!
//! The paper's §II framework (Algorithm 1) solves any problem expressed as
//! (bottom, forbidden, advance). This example instantiates it four ways:
//!
//! 1. single-source shortest paths (Bellman-Ford style),
//! 2. stable marriage (Gale–Shapley style),
//! 3. pointer jumping (the inner instance of LLP-Boruvka),
//! 4. the literal LLP-Prim of the paper's Algorithm 4, as an executable
//!    specification cross-checked against the optimised implementation.
//!
//! ```text
//! cargo run --release --example llp_framework
//! ```

use llp_mst_suite::graph::samples::fig1;
use llp_mst_suite::llp::instances::{PointerJump, ShortestPaths, StableMarriage};
use llp_mst_suite::llp::{solve_chaotic, solve_parallel, solve_sequential};
use llp_mst_suite::mst::spec::LlpPrimSpec;
use llp_mst_suite::prelude::*;

fn main() {
    let pool = ThreadPool::with_available_threads();

    // 1. Shortest paths: the lattice of distance vectors; a vertex is
    // forbidden while its distance is below its cheapest justification.
    let edges = [
        (0usize, 1usize, 4.0),
        (0, 2, 1.0),
        (2, 1, 2.0),
        (1, 3, 1.0),
        (2, 3, 5.0),
    ];
    let sp = ShortestPaths::new(4, &edges, 0);
    let sol = solve_parallel(&sp, &pool).unwrap();
    println!("shortest paths from 0: {:?}", sol.state);
    println!(
        "  ({} rounds, {} advances)",
        sol.stats.rounds, sol.stats.advances
    );
    assert_eq!(sol.state, vec![0.0, 3.0, 1.0, 4.0]);

    // The same instance through the asynchronous worklist solver: the
    // `dependents` hint (out-neighbours) turns global sweeps into a
    // Bellman-Ford-style queue — same least fixpoint, less work.
    let cha = solve_chaotic(&sp).unwrap();
    assert_eq!(cha.state, sol.state);
    println!(
        "  worklist solver: same answer with {} forbidden-checks",
        cha.stats.forbidden_checks
    );

    // 2. Stable marriage: proposers advance down their preference lists
    // while a rival their candidate prefers points at the same candidate.
    let sm = StableMarriage::new(
        vec![vec![0, 1, 2], vec![1, 0, 2], vec![0, 1, 2]],
        vec![vec![1, 0, 2], vec![0, 1, 2], vec![0, 1, 2]],
    );
    let sol = solve_sequential(&sm).unwrap();
    println!("\nstable matching (proposer -> candidate): {:?}", sm.matching(&sol.state));

    // 3. Pointer jumping: forbidden(j) ≡ G[j] != G[G[j]] — Lemma 3/4 of
    // the paper, the synchronization-free core of LLP-Boruvka.
    let chain = PointerJump::new(vec![0, 0, 1, 2, 3, 4, 5, 6]);
    let sol = solve_parallel(&chain, &pool).unwrap();
    println!(
        "\npointer jumping flattened an 8-chain to a star in {} rounds: {:?}",
        sol.stats.rounds, sol.state
    );
    assert!(sol.state.iter().all(|&p| p == 0));

    // 4. Algorithm 4 verbatim: LLP-Prim as predicate detection, solved by
    // the generic engine and compared with the optimised implementation.
    let graph = fig1();
    let spec_mst = LlpPrimSpec::new(&graph, 0).unwrap().solve().unwrap();
    let fast_mst = llp_prim_par(&graph, 0, &pool).unwrap();
    assert_eq!(spec_mst.canonical_keys(), fast_mst.canonical_keys());
    println!(
        "\nAlgorithm 4 (via the generic solver) and Algorithm 5 (optimised) \
         agree on Fig. 1: weight {}",
        spec_mst.total_weight
    );
}

//! Minimum spanning *forest* of a scale-free "social" graph.
//!
//! Graph500-style Kronecker graphs (the paper's second dataset family) are
//! disconnected: a giant component plus fragments and isolated vertices.
//! This example computes the MSF of the whole graph with LLP-Boruvka —
//! which, unlike the Prim family, handles forests natively — and reports
//! the component structure.
//!
//! ```text
//! cargo run --release --example social_network [-- scale]
//! ```

use llp_mst_suite::graph::algo::{connected_components, largest_component};
use llp_mst_suite::graph::generators::{rmat, RmatParams};
use llp_mst_suite::prelude::*;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);
    println!("generating an RMAT graph at scale {scale} (edge factor 16) ...");
    let graph = rmat(RmatParams::graph500(scale, 16, 7));
    let comps = connected_components(&graph);
    println!(
        "graph: {} vertices, {} edges, {} connected components",
        graph.num_vertices(),
        graph.num_edges(),
        comps.num_components
    );

    let pool = ThreadPool::with_available_threads();

    // LLP-Boruvka computes the minimum spanning forest directly.
    let msf = llp_boruvka(&graph, &pool);
    println!(
        "\nLLP-Boruvka MSF: {} edges across {} trees, total weight {:.2}",
        msf.edges.len(),
        msf.num_trees,
        msf.total_weight
    );
    println!(
        "work: {} Boruvka rounds, {} pointer jumps, {} edges scanned",
        msf.stats.rounds, msf.stats.pointer_jumps, msf.stats.edges_scanned
    );
    assert_eq!(msf.num_trees, comps.num_components);
    verify_msf(&graph, &msf).expect("verified minimum spanning forest");
    println!("MSF verified against the Kruskal oracle ✓");

    // A Prim-family algorithm refuses the disconnected graph...
    match llp_prim_par(&graph, 0, &pool) {
        Err(MstError::Disconnected { reached, total }) => println!(
            "\nLLP-Prim correctly refuses the disconnected graph \
             (reached {reached} of {total} vertices)"
        ),
        Ok(_) => println!("\n(this seed happened to produce a connected graph)"),
        Err(e) => panic!("unexpected error: {e}"),
    }

    // ...but runs fine on the giant component, like the paper's
    // "Graph500 18M" subset of the scale-25 graph.
    let giant = largest_component(&graph);
    println!(
        "giant component: {} vertices ({:.1}% of the graph)",
        giant.num_vertices(),
        100.0 * giant.num_vertices() as f64 / graph.num_vertices() as f64
    );
    let mst = llp_prim_par(&giant, 0, &pool).expect("giant component is connected");
    println!(
        "LLP-Prim on the giant component: weight {:.2}, {:.1}% of vertices fixed early",
        mst.total_weight,
        100.0 * mst.stats.early_fixes as f64 / giant.num_vertices() as f64
    );
}

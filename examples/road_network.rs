//! Road-network MST: the paper's USA-road scenario at laptop scale.
//!
//! Generates a synthetic road network (or loads a real DIMACS `.gr` file
//! given as the first argument — e.g. `USA-road-d.USA.gr`), computes the
//! MST with Prim and both LLP algorithms, and compares runtimes and work
//! metrics.
//!
//! ```text
//! cargo run --release --example road_network [-- path/to/USA-road-d.USA.gr]
//! ```

use llp_mst_suite::graph::generators::{road_network, RoadParams};
use llp_mst_suite::graph::io::read_dimacs;
use llp_mst_suite::prelude::*;
use std::time::Instant;

fn main() {
    let graph = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading DIMACS graph from {path} ...");
            let file = std::fs::File::open(&path).expect("cannot open graph file");
            read_dimacs(std::io::BufReader::new(file)).expect("cannot parse DIMACS file")
        }
        None => {
            println!("generating a synthetic road network (pass a .gr file to use real data)");
            road_network(RoadParams::usa_like(300, 300, 42))
        }
    };
    println!(
        "road graph: {} vertices, {} edges, avg degree {:.2}\n",
        graph.num_vertices(),
        graph.num_edges(),
        graph.average_degree()
    );

    let pool = ThreadPool::with_available_threads();
    let root = 0;

    let timed = |name: &str, f: &dyn Fn() -> MstResult| {
        let t0 = Instant::now();
        let r = f();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{name:>14}: {ms:8.2} ms  weight {:.1}  (heap ops {}, early fixes {}, rounds {})",
            r.total_weight,
            r.stats.heap_ops(),
            r.stats.early_fixes,
            r.stats.rounds
        );
        r
    };

    let prim = timed("Prim", &|| prim_lazy(&graph, root).expect("connected"));
    let llp1 = timed("LLP-Prim (1T)", &|| {
        llp_prim_seq(&graph, root).expect("connected")
    });
    let llpp = timed("LLP-Prim", &|| {
        llp_prim_par(&graph, root, &pool).expect("connected")
    });
    let bor = timed("Boruvka", &|| boruvka_par(&graph, &pool));
    let llpb = timed("LLP-Boruvka", &|| llp_boruvka(&graph, &pool));

    // All five agree on the canonical MST.
    for r in [&llp1, &llpp, &bor, &llpb] {
        assert_eq!(r.canonical_keys(), prim.canonical_keys());
    }
    verify_msf(&graph, &prim).expect("verified minimum spanning tree");
    println!("\nall algorithms agree; MST verified against the Kruskal oracle ✓");

    println!(
        "\nearly fixing saved {:.1}% of Prim's heap operations",
        100.0 * (1.0 - llp1.stats.heap_ops() as f64 / prim.stats.heap_ops() as f64)
    );
}

//! Quickstart: build the paper's Fig. 1 graph, compute its MST with every
//! algorithm, and print the tree.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use llp_mst_suite::graph::samples::fig1;
use llp_mst_suite::prelude::*;

fn main() {
    // The weighted graph of the paper's Fig. 1 (vertices a..e = 0..4).
    let graph = fig1();
    println!(
        "graph: {} vertices, {} edges, total weight {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.total_weight()
    );

    let pool = ThreadPool::with_available_threads();
    let root = 0; // vertex 'a'

    // The paper's two contributions…
    let llp_prim = llp_prim_par(&graph, root, &pool).expect("fig1 is connected");
    let llp_boruvka = llp_boruvka(&graph, &pool);

    // …and the classical baselines.
    let prim = prim_lazy(&graph, root).expect("fig1 is connected");
    let boruvka = boruvka_seq(&graph);
    let kr = kruskal(&graph);

    println!("\nMST edges found by LLP-Prim:");
    let mut edges = llp_prim.edges.clone();
    edges.sort_by(|a, b| a.w.total_cmp(&b.w));
    for e in &edges {
        let name = |v: u32| (b'a' + v as u8) as char;
        println!("  ({}, {})  weight {}", name(e.u), name(e.v), e.w);
    }
    println!("total weight: {}", llp_prim.total_weight);

    // Every algorithm returns the identical canonical MST — the paper's
    // {2, 3, 4, 7} with weight 16.
    for (name, result) in [
        ("LLP-Prim", &llp_prim),
        ("LLP-Boruvka", &llp_boruvka),
        ("Prim", &prim),
        ("Boruvka", &boruvka),
        ("Kruskal", &kr),
    ] {
        assert_eq!(result.canonical_keys(), kr.canonical_keys());
        assert_eq!(result.total_weight, 16.0);
        println!("{name:>12}: weight {} ✓", result.total_weight);
    }

    // Work metrics: LLP-Prim fixed 3 of 4 vertices early (no heap).
    println!(
        "\nLLP-Prim stats: {} early fixes, {} heap fixes, {} heap ops",
        llp_prim.stats.early_fixes,
        llp_prim.stats.heap_fixes,
        llp_prim.stats.heap_ops()
    );
    println!(
        "    Prim stats: {} heap ops",
        prim.stats.heap_ops()
    );
}
